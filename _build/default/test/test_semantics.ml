(* Ground-truth validation of the whole evaluation stack.

   The paper DEFINES Q(LB) = { c : T ⊨f φ(c) }: a tuple is an answer
   when φ(c) holds in EVERY finite model of the theory. All engines in
   this library go through Theorem 1 (mappings/partitions). This suite
   instead enumerates models directly — every physical database over
   every subset of C, every constant interpretation, every relation
   assignment, filtered by Axioms.is_model — and intersects. If
   Theorem 1 (or its implementation) were wrong, this suite would
   catch it.

   Model space is astronomically large, so databases here are tiny:
   two or three constants, a single unary predicate. *)

open Logicaldb

let check = Alcotest.check

(* All sublists of a list. *)
let rec sublists = function
  | [] -> [ [] ]
  | x :: rest ->
    let without = sublists rest in
    List.map (fun s -> x :: s) without @ without

(* All functions from [domain] (a list) to [codomain], as assoc
   lists. *)
let rec functions domain codomain =
  match domain with
  | [] -> [ [] ]
  | x :: rest ->
    let tails = functions rest codomain in
    List.concat_map
      (fun y -> List.map (fun tail -> (x, y) :: tail) tails)
      codomain

(* Enumerate every physical database for the vocabulary of [lb] whose
   domain is a nonempty subset of C. Relations range over all subsets
   of D^k. *)
let all_candidate_databases lb =
  let vocabulary = Cw_database.vocabulary lb in
  let constants = Cw_database.constants lb in
  let domains =
    List.filter (fun d -> d <> []) (sublists constants)
  in
  List.concat_map
    (fun domain ->
      let constant_maps = functions constants domain in
      List.concat_map
        (fun cmap ->
          (* Fold over predicates, building all relation choices. *)
          let rec choose = function
            | [] -> [ [] ]
            | (p, k) :: rest ->
              let tails = choose rest in
              let universe = Relation.full ~domain k in
              List.of_seq
                (Seq.concat_map
                   (fun r -> List.to_seq (List.map (fun t -> (p, r) :: t) tails))
                   (Relation.subsets universe))
          in
          List.map
            (fun relations ->
              Database.make ~vocabulary ~domain ~constants:cmap ~relations)
            (choose (Vocabulary.predicates vocabulary)))
        constant_maps)
    domains

let models lb =
  List.filter (Axioms.is_model lb) (all_candidate_databases lb)

(* The certain answer, straight from the definition. *)
let certain_by_definition lb q =
  let k = Query.arity q in
  let candidates = Relation.full ~domain:(Cw_database.constants lb) k in
  List.fold_left
    (fun survivors model ->
      Relation.filter
        (fun tuple ->
          (* φ(c) is a sentence; constants are interpreted by the
             model. *)
          Eval.satisfies model (Query.instantiate q tuple))
        survivors)
    candidates (models lb)

let tiny_dbs =
  [
    ( "open pair",
      database ~predicates:[ ("P", 1) ] ~constants:[ "a"; "b" ]
        ~facts:[ ("P", [ "a" ]) ]
        () );
    ( "closed pair",
      database ~predicates:[ ("P", 1) ] ~constants:[ "a"; "b" ]
        ~facts:[ ("P", [ "a" ]) ]
        ~distinct:[ ("a", "b") ]
        () );
    ( "three open",
      database ~predicates:[ ("P", 1) ] ~constants:[ "a"; "b"; "c" ]
        ~facts:[ ("P", [ "a" ]); ("P", [ "b" ]) ]
        ~distinct:[ ("a", "b") ]
        () );
  ]

let queries =
  List.map Parser.query
    [
      "(x). P(x)";
      "(x). ~P(x)";
      "(x). x = a";
      "(x). x != a";
      "(). exists x. P(x)";
      "(). forall x. P(x)";
      "(). P(b) \\/ ~P(b)";
      "(x). P(x) \\/ x = b";
    ]

let test_models_are_nonempty () =
  List.iter
    (fun (name, lb) ->
      let count = List.length (models lb) in
      Alcotest.(check bool) (name ^ " has models") true (count > 0))
    tiny_dbs

(* Sanity of the model enumeration itself: Ph1 must be among the
   models, and any database violating a fact must not be. *)
let test_ph1_among_models () =
  List.iter
    (fun (name, lb) ->
      Alcotest.(check bool)
        (name ^ ": Ph1 is a model")
        true
        (List.exists (Database.equal (Ph.ph1 lb)) (models lb)))
    tiny_dbs

let test_definition_matches_theorem1 () =
  List.iter
    (fun (name, lb) ->
      List.iter
        (fun q ->
          check Support.relation_testable
            (Printf.sprintf "%s / %s" name (Pretty.query_to_string q))
            (certain_by_definition lb q)
            (Certain.answer lb q))
        queries)
    tiny_dbs

(* The approximation must be sound w.r.t. the definition too (a
   Theorem 11 check that does not route through Theorem 1). *)
let test_approx_sound_by_definition () =
  List.iter
    (fun (name, lb) ->
      List.iter
        (fun q ->
          Alcotest.(check bool)
            (Printf.sprintf "%s / %s" name (Pretty.query_to_string q))
            true
            (Relation.subset (Approx.answer lb q) (certain_by_definition lb q)))
        queries)
    tiny_dbs

let suite =
  [
    Alcotest.test_case "models exist" `Quick test_models_are_nonempty;
    Alcotest.test_case "Ph1 among models" `Quick test_ph1_among_models;
    Alcotest.test_case "definition = theorem 1 engines" `Slow
      test_definition_matches_theorem1;
    Alcotest.test_case "approximation sound by definition" `Slow
      test_approx_sound_by_definition;
  ]
