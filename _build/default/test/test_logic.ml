(* Unit tests for the logic layer: terms, vocabularies, formulas, NNF. *)

open Logicaldb

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let x = Term.var "x"
let y = Term.var "y"
let a = Term.const "a"
let b = Term.const "b"

(* --- terms --- *)

let test_term_basics () =
  check_bool "var is var" true (Term.is_var x);
  check_bool "const is const" true (Term.is_const a);
  check_bool "var not const" false (Term.is_const x);
  check_bool "equal" true (Term.equal x (Term.var "x"));
  check_bool "not equal across kinds" false (Term.equal x (Term.const "x"))

let test_term_collections () =
  check (Alcotest.list Alcotest.string) "vars in order" [ "x"; "y" ]
    (Term.vars_of [ x; a; y; x ]);
  check (Alcotest.list Alcotest.string) "consts in order" [ "a"; "b" ]
    (Term.consts_of [ a; x; b; a ])

let test_term_substitute () =
  let map v = if String.equal v "x" then Some a else None in
  check_bool "var substituted" true (Term.equal (Term.substitute map x) a);
  check_bool "const untouched" true (Term.equal (Term.substitute map b) b);
  check_bool "other var untouched" true (Term.equal (Term.substitute map y) y)

(* --- vocabulary --- *)

let test_vocabulary_basics () =
  let v =
    Vocabulary.make ~constants:[ "b"; "a"; "a" ] ~predicates:[ ("P", 1); ("R", 2) ]
  in
  check (Alcotest.list Alcotest.string) "constants dedup + sorted" [ "a"; "b" ]
    (Vocabulary.constants v);
  check_int "arity" 2 (Vocabulary.arity v "R");
  check_bool "mem" true (Vocabulary.mem_predicate v "P");
  check_bool "not mem" false (Vocabulary.mem_predicate v "Q")

let test_vocabulary_errors () =
  Alcotest.check_raises "arity clash" (Invalid_argument
    "Vocabulary: predicate P declared with arities 1 and 2")
    (fun () ->
      ignore (Vocabulary.make ~constants:[] ~predicates:[ ("P", 1); ("P", 2) ]));
  Alcotest.check_raises "equality reserved"
    (Invalid_argument "Vocabulary: equality is built in and cannot be declared")
    (fun () -> ignore (Vocabulary.make ~constants:[] ~predicates:[ ("=", 2) ]))

let test_vocabulary_union () =
  let va = Vocabulary.make ~constants:[ "a" ] ~predicates:[ ("P", 1) ] in
  let vb = Vocabulary.make ~constants:[ "b" ] ~predicates:[ ("R", 2) ] in
  let u = Vocabulary.union va vb in
  check (Alcotest.list Alcotest.string) "union constants" [ "a"; "b" ]
    (Vocabulary.constants u);
  check_int "union predicates" 2 (List.length (Vocabulary.predicates u))

(* --- formulas --- *)

let sample =
  (* exists z. (R(x, z) /\ ~P(a)) \/ z = y ... with z bound *)
  Formula.Exists
    ( "z",
      Formula.Or
        ( Formula.And
            ( Formula.Atom ("R", [ x; Term.var "z" ]),
              Formula.Not (Formula.Atom ("P", [ a ])) ),
          Formula.Eq (Term.var "z", y) ) )

let test_free_vars () =
  check (Alcotest.list Alcotest.string) "free vars" [ "x"; "y" ]
    (Formula.free_vars sample);
  check (Alcotest.list Alcotest.string) "all vars" [ "z"; "x"; "y" ]
    (Formula.all_vars sample)

let test_free_preds () =
  let preds = Formula.free_preds sample in
  check_bool "R free" true (List.mem ("R", 2) preds);
  check_bool "P free" true (List.mem ("P", 1) preds);
  let so = Formula.Exists2 ("Q", 1, Formula.Atom ("Q", [ x ])) in
  check_bool "bound SO predicate not free" true (Formula.free_preds so = [])

let test_constants () =
  check (Alcotest.list Alcotest.string) "constants" [ "a" ]
    (Formula.constants sample)

let test_positive () =
  check_bool "atom positive" true (Formula.is_positive (Formula.Atom ("P", [ x ])));
  check_bool "negation not positive" false
    (Formula.is_positive (Formula.Not (Formula.Atom ("P", [ x ]))));
  check_bool "double negation positive" true
    (Formula.is_positive (Formula.Not (Formula.Not (Formula.Atom ("P", [ x ])))));
  check_bool "implication left is negative" false
    (Formula.is_positive
       (Formula.Implies (Formula.Atom ("P", [ x ]), Formula.True)));
  check_bool "quantified positive" true
    (Formula.is_positive (Formula.Forall ("x", Formula.Atom ("P", [ x ]))))

let test_substitute_capture () =
  (* Substituting y for x in (exists y. R(x, y)) must rename the
     binder, not capture. *)
  let f = Formula.Exists ("y", Formula.Atom ("R", [ x; y ])) in
  let map v = if String.equal v "x" then Some y else None in
  let g = Formula.substitute map f in
  match g with
  | Formula.Exists (fresh, Formula.Atom ("R", [ Term.Var v1; Term.Var v2 ])) ->
    check Alcotest.string "outer var substituted" "y" v1;
    check Alcotest.string "binder renamed" fresh v2;
    check_bool "no capture" false (String.equal fresh "y")
  | _ -> Alcotest.fail "unexpected shape after substitution"

let test_instantiate () =
  let f = Formula.Atom ("R", [ x; y ]) in
  let g = Formula.instantiate [ ("x", "a"); ("y", "b") ] f in
  check Support.formula_testable "instantiated" (Formula.Atom ("R", [ a; b ])) g

let test_rename_atom () =
  let f = Formula.And (Formula.Atom ("P", [ x ]), Formula.Atom ("R", [ x; y ])) in
  let g = Formula.rename_atom ~from:"P" ~into:"P2" f in
  check Support.formula_testable "renamed"
    (Formula.And (Formula.Atom ("P2", [ x ]), Formula.Atom ("R", [ x; y ])))
    g

let test_sigma_rank () =
  let qf = Formula.Atom ("P", [ a ]) in
  let f1 = Formula.Exists ("x", Formula.Atom ("P", [ x ])) in
  let f2 = Formula.Exists ("x", Formula.Forall ("y", Formula.Atom ("R", [ x; y ]))) in
  let f_univ = Formula.Forall ("x", Formula.Atom ("P", [ x ])) in
  check Alcotest.(option int) "rank 0" (Some 0) (Formula.fo_sigma_rank qf);
  check Alcotest.(option int) "rank 1" (Some 1) (Formula.fo_sigma_rank f1);
  check Alcotest.(option int) "rank 2" (Some 2) (Formula.fo_sigma_rank f2);
  check Alcotest.(option int) "forall-first counts empty block" (Some 2)
    (Formula.fo_sigma_rank f_univ);
  let nonprenex =
    Formula.And (f1, Formula.Atom ("P", [ a ]))
  in
  check Alcotest.(option int) "not prenex" None (Formula.fo_sigma_rank nonprenex)

let test_so_sigma_rank () =
  let f =
    Formula.Exists2
      ("Q", 1, Formula.Forall ("x", Formula.Atom ("Q", [ x ])))
  in
  check Alcotest.(option int) "SO rank 1" (Some 1) (Formula.so_sigma_rank f);
  let g = Formula.Exists2 ("Q", 1, Formula.Forall2 ("S", 1, Formula.True)) in
  check Alcotest.(option int) "SO rank 2" (Some 2) (Formula.so_sigma_rank g)

let test_smart_constructors () =
  check Support.formula_testable "and true" (Formula.Atom ("P", [ x ]))
    (Formula.and_ Formula.True (Formula.Atom ("P", [ x ])));
  check Support.formula_testable "or false" (Formula.Atom ("P", [ x ]))
    (Formula.or_ (Formula.Atom ("P", [ x ])) Formula.False);
  check Support.formula_testable "not not" (Formula.Atom ("P", [ x ]))
    (Formula.not_ (Formula.not_ (Formula.Atom ("P", [ x ]))));
  check Support.formula_testable "conj empty" Formula.True (Formula.conj []);
  check Support.formula_testable "disj empty" Formula.False (Formula.disj [])

(* --- NNF --- *)

let test_nnf_shapes () =
  let open Formula in
  let f = Not (And (Atom ("P", [ x ]), Not (Atom ("P", [ y ])))) in
  let g = Nnf.transform f in
  check_bool "is nnf" true (Nnf.is_nnf g);
  check Support.formula_testable "de morgan"
    (Or (Not (Atom ("P", [ x ])), Atom ("P", [ y ])))
    g

let test_nnf_quantifiers () =
  let open Formula in
  let f = Not (Forall ("x", Atom ("P", [ x ]))) in
  check Support.formula_testable "neg forall"
    (Exists ("x", Not (Atom ("P", [ x ]))))
    (Nnf.transform f);
  let g = Not (Exists2 ("Q", 1, Atom ("Q", [ a ]))) in
  check Support.formula_testable "neg SO exists"
    (Forall2 ("Q", 1, Not (Atom ("Q", [ a ]))))
    (Nnf.transform g)

let test_nnf_implies_iff () =
  let open Formula in
  let p = Atom ("P", [ a ]) and q = Atom ("P", [ b ]) in
  check_bool "implies eliminated" true (Nnf.is_nnf (Nnf.transform (Implies (p, q))));
  check_bool "iff eliminated" true (Nnf.is_nnf (Nnf.transform (Iff (p, q))));
  check_bool "not iff eliminated" true
    (Nnf.is_nnf (Nnf.transform (Not (Iff (p, q)))))

(* NNF preserves semantics: checked against the evaluator on a tiny
   physical database, over random formulas. *)
let nnf_preserves_semantics =
  QCheck2.Test.make ~count:300 ~name:"nnf preserves truth"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let pb = Ph.ph1 db in
      Eval.satisfies pb sentence = Eval.satisfies pb (Nnf.transform sentence))

let nnf_idempotent =
  QCheck2.Test.make ~count:300 ~name:"nnf idempotent"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (_, sentence) ->
      let once = Nnf.transform sentence in
      Formula.equal once (Nnf.transform once))

let nnf_output_is_nnf =
  QCheck2.Test.make ~count:300 ~name:"nnf output is nnf"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (_, sentence) -> Nnf.is_nnf (Nnf.transform sentence))

(* --- prenex normal form --- *)

let test_prenex_shapes () =
  let open Formula in
  (* (∃x P(x)) ∧ (∀y R(y,a)) pulls both quantifiers out. *)
  let f =
    And
      ( Exists ("x", Atom ("P", [ Term.var "x" ])),
        Forall ("y", Atom ("R", [ Term.var "y"; a ])) )
  in
  let g = Prenex.transform f in
  check_bool "prenex" true (Prenex.is_prenex g);
  check_bool "was not prenex" false (Prenex.is_prenex f);
  (* Negated quantifier dualizes then extracts. *)
  let h = Not (Forall ("x", Atom ("P", [ Term.var "x" ]))) in
  check Support.formula_testable "dualized"
    (Exists ("x", Not (Atom ("P", [ Term.var "x" ]))))
    (Prenex.transform h)

let test_prenex_shadowing () =
  let open Formula in
  (* Two binders named x on the two sides of a conjunction must end up
     with different names. *)
  let f =
    And
      ( Exists ("x", Atom ("P", [ Term.var "x" ])),
        Forall ("x", Atom ("Q", [ Term.var "x" ])) )
  in
  match Prenex.transform f with
  | Exists (x1, Forall (x2, _)) ->
    check_bool "renamed apart" false (String.equal x1 x2)
  | _ -> Alcotest.fail "unexpected prefix shape"

let test_prenex_rank () =
  check_int "rank of matrix" 0 (Prenex.rank (Formula.Atom ("P", [ a ])));
  check_int "rank exists" 1
    (Prenex.rank (Formula.Exists ("x", Formula.Atom ("P", [ x ]))));
  check_int "rank exists-forall" 2
    (Prenex.rank
       (Formula.Exists
          ("x", Formula.Forall ("y", Formula.Atom ("R", [ x; y ])))));
  (* SO quantifiers are rejected. *)
  match Prenex.transform (Formula.Exists2 ("Q", 1, Formula.True)) with
  | exception Prenex.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

(* --- simplification --- *)

let test_simplify_rules () =
  let open Formula in
  let p = Atom ("P", [ a ]) in
  let cases =
    [
      ("double negation", Not (Not p), p);
      ("reflexive equality", Eq (a, a), True);
      ("and true", And (p, True), p);
      ("or false", Or (False, p), p);
      ("implies false", Implies (p, False), Not p);
      ("iff false", Iff (False, p), Not p);
      ("iff self", Iff (p, p), True);
      ("absorption and", And (p, Or (p, Atom ("Q", []))), p);
      ("absorption or", Or (And (Atom ("Q", []), p), p), p);
      ("vacuous exists", Exists ("x", p), p);
      ("vacuous forall", Forall ("x", p), p);
      (* A non-vacuous quantifier stays. *)
      ( "bound quantifier kept",
        Exists ("x", Atom ("P", [ x ])),
        Exists ("x", Atom ("P", [ x ])) );
    ]
  in
  List.iter
    (fun (name, input, expected) ->
      check Support.formula_testable name expected (Simplify.formula input))
    cases

let simplify_preserves_semantics =
  QCheck2.Test.make ~count:300 ~name:"simplify preserves truth"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let pb = Ph.ph1 db in
      Eval.satisfies pb sentence = Eval.satisfies pb (Simplify.formula sentence))

let simplify_never_grows =
  QCheck2.Test.make ~count:300 ~name:"simplify never grows"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (_, sentence) ->
      Formula.size (Simplify.formula sentence) <= Formula.size sentence)

let simplify_idempotent =
  QCheck2.Test.make ~count:300 ~name:"simplify idempotent"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (_, sentence) ->
      let once = Simplify.formula sentence in
      Formula.equal once (Simplify.formula once))

let prenex_preserves_semantics =
  QCheck2.Test.make ~count:300 ~name:"prenex preserves truth"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (db, sentence) ->
      let pb = Ph.ph1 db in
      Eval.satisfies pb sentence = Eval.satisfies pb (Prenex.transform sentence))

let prenex_output_is_prenex =
  QCheck2.Test.make ~count:300 ~name:"prenex output is prenex"
    ~print:Support.print_db_sentence Support.gen_db_and_sentence
    (fun (_, sentence) ->
      let g = Prenex.transform sentence in
      Prenex.is_prenex g
      && Option.is_some (Formula.fo_sigma_rank g))

let suite =
  [
    Alcotest.test_case "term basics" `Quick test_term_basics;
    Alcotest.test_case "term collections" `Quick test_term_collections;
    Alcotest.test_case "term substitute" `Quick test_term_substitute;
    Alcotest.test_case "vocabulary basics" `Quick test_vocabulary_basics;
    Alcotest.test_case "vocabulary errors" `Quick test_vocabulary_errors;
    Alcotest.test_case "vocabulary union" `Quick test_vocabulary_union;
    Alcotest.test_case "free vars" `Quick test_free_vars;
    Alcotest.test_case "free preds" `Quick test_free_preds;
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "positivity" `Quick test_positive;
    Alcotest.test_case "capture-avoiding substitution" `Quick
      test_substitute_capture;
    Alcotest.test_case "instantiate" `Quick test_instantiate;
    Alcotest.test_case "rename atom" `Quick test_rename_atom;
    Alcotest.test_case "FO sigma rank" `Quick test_sigma_rank;
    Alcotest.test_case "SO sigma rank" `Quick test_so_sigma_rank;
    Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
    Alcotest.test_case "nnf shapes" `Quick test_nnf_shapes;
    Alcotest.test_case "nnf quantifiers" `Quick test_nnf_quantifiers;
    Alcotest.test_case "nnf implies/iff" `Quick test_nnf_implies_iff;
    Support.qcheck_case nnf_preserves_semantics;
    Support.qcheck_case nnf_idempotent;
    Support.qcheck_case nnf_output_is_nnf;
    Alcotest.test_case "simplify rules" `Quick test_simplify_rules;
    Support.qcheck_case simplify_preserves_semantics;
    Support.qcheck_case simplify_never_grows;
    Support.qcheck_case simplify_idempotent;
    Alcotest.test_case "prenex shapes" `Quick test_prenex_shapes;
    Alcotest.test_case "prenex shadowing" `Quick test_prenex_shadowing;
    Alcotest.test_case "prenex rank" `Quick test_prenex_rank;
    Support.qcheck_case prenex_preserves_semantics;
    Support.qcheck_case prenex_output_is_prenex;
  ]
