(* Theorems 7 and 9 in action: deciding quantified Boolean formulas by
   certain query evaluation — the reductions behind the Πₖ₊₁ᵖ
   lower bounds for combined complexity (FO queries, Theorem 7) and
   second-order data complexity (Theorem 9).

   Run with: dune exec examples/qbf_demo.exe *)

open Logicaldb

let section title = Printf.printf "\n== %s ==\n" title

let v b i = { Qbf.block = b; index = i }
let pos b i = Qbf.Lit { positive = true; var = v b i }
let neg b i = Qbf.Lit { positive = false; var = v b i }

let show_fo qbf =
  Fmt.pr "QBF: %a@." Qbf.pp qbf;
  let query = Qbf_fo.query qbf in
  Fmt.pr "  encoded FO query: %a@." Pretty.pp_query query;
  Fmt.pr "  prefix class: Sigma_%s@."
    (match Formula.fo_sigma_rank (Query.body query) with
    | Some k -> string_of_int k
    | None -> "?");
  let direct = Qbf.eval qbf in
  let reduced = Qbf_fo.eval_via_certain qbf in
  Printf.printf "  direct evaluation: %b  |  via Theorem 7 reduction: %b%s\n"
    direct reduced
    (if direct = reduced then "" else "  *** MISMATCH ***");
  assert (direct = reduced)

let () =
  section "Theorem 7 (first-order queries, combined complexity)";

  (* ∀x ∃y (x ↔ y) — true. *)
  show_fo
    (Qbf.make ~blocks:[ 1; 1 ]
       ~matrix:
         (Qbf.Or (Qbf.And (pos 1 1, pos 2 1), Qbf.And (neg 1 1, neg 2 1))));

  (* ∀x₁∀x₂ ∃y (x₁ ∨ y) ∧ (x₂ ∨ ¬y) — true (pick y by cases). *)
  show_fo
    (Qbf.make ~blocks:[ 2; 1 ]
       ~matrix:
         (Qbf.And (Qbf.Or (pos 1 1, pos 2 1), Qbf.Or (pos 1 2, neg 2 1))));

  (* ∀x ∃y (y ∧ ¬x) — false. *)
  show_fo
    (Qbf.make ~blocks:[ 1; 1 ] ~matrix:(Qbf.And (pos 2 1, neg 1 1)));

  section "Theorem 9 (second-order queries, data complexity)";
  let lit positive b i = { Qbf.positive; var = v b i } in
  (* ∀x ∃y (x ∨ y) ∧ (¬x ∨ ¬y): y = ¬x — true. *)
  let qbf =
    Qbf.of_cnf3 ~blocks:[ 1; 1 ]
      [
        (lit true 1 1, lit true 2 1, lit true 2 1);
        (lit false 1 1, lit false 2 1, lit false 2 1);
      ]
  in
  Fmt.pr "QBF: %a@." Qbf.pp qbf;
  let query = Qbf_so.query qbf in
  Fmt.pr "  encoded SO query: %a@." Pretty.pp_query query;
  Fmt.pr "  second-order prefix class: Sigma_%s@."
    (match Formula.so_sigma_rank (Query.body query) with
    | Some k -> string_of_int k
    | None -> "?");
  let db = Qbf_so.database qbf in
  Printf.printf "  encoded database: %d constants, %d facts\n"
    (List.length (Cw_database.constants db))
    (List.length (Cw_database.facts db));
  let direct = Qbf.eval qbf in
  let reduced = Qbf_so.eval_via_certain qbf in
  Printf.printf "  direct evaluation: %b  |  via Theorem 9 reduction: %b\n"
    direct reduced;
  assert (direct = reduced);

  section "Random spot checks (both reductions vs the direct evaluator)";
  List.iter
    (fun seed ->
      let qbf = Qbf.random_cnf3 ~blocks:[ 2; 2 ] ~clauses:3 ~seed in
      let direct = Qbf.eval qbf in
      let fo = Qbf_fo.eval_via_certain qbf in
      Printf.printf "  seed %d: direct=%b fo-reduction=%b\n" seed direct fo;
      assert (direct = fo))
    [ 10; 20; 30; 40 ];
  Printf.printf "all agree.\n"
