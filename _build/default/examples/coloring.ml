(* Theorem 5 in action: deciding graph 3-colorability by evaluating a
   FIXED Boolean first-order query over a CW logical database that
   encodes the graph — the reduction behind the co-NP-completeness of
   data complexity.

   Run with: dune exec examples/coloring.exe *)

open Logicaldb

let section title = Printf.printf "\n== %s ==\n" title

let describe name g =
  let db = Three_col.database g in
  let via_reduction = Three_col.colorable_via_certain g in
  let via_solver = Graph.colorable 3 g in
  Fmt.pr "%-12s %a@." name Graph.pp g;
  Printf.printf "  database size: %d (constants+facts+axioms)\n"
    (Cw_database.size db);
  Printf.printf "  3-colorable via reduction: %b  |  via solver: %b%s\n"
    via_reduction via_solver
    (if via_reduction = via_solver then "" else "  *** MISMATCH ***");
  assert (via_reduction = via_solver)

let () =
  section "The fixed query (data complexity: the query never changes)";
  Fmt.pr "  Q = %a@." Pretty.pp_query Three_col.query;
  Printf.printf
    "  G is 3-colorable  iff  Q is NOT certain over the encoding of G\n";

  section "Classic graphs";
  describe "triangle" (Graph.cycle 3);
  describe "C5" (Graph.cycle 5);
  describe "K4" (Graph.complete 4);
  describe "C6" (Graph.cycle 6);
  (* The Petersen graph (10 vertices, 13 constants) is already beyond
     the exact engine: the certain-answer search space is the set of
     kernel partitions of 13 constants — this co-NP blowup is precisely
     Theorem 5's point. The polynomial baseline handles it directly. *)
  Printf.printf "petersen     via solver only (reduction blows up): %b\n"
    (Graph.colorable 3 (Graph.petersen ()));

  section "The encoding of the triangle, as a theory";
  let db = Three_col.database (Graph.cycle 3) in
  List.iter
    (fun f -> Fmt.pr "  %a@." Pretty.pp_formula f)
    (Axioms.atomic_facts db @ Axioms.uniqueness db);

  section "Extracting a coloring from a countermodel";
  let g = Graph.cycle 5 in
  let db = Three_col.database g in
  let witness =
    (* Search kernel partitions: each valid partition is (the kernel
       of) a respecting mapping; a countermodel yields a coloring. *)
    Seq.find_map
      (fun p ->
        if Eval.satisfies (Partition.quotient p) (Query.body Three_col.query)
        then None
        else Three_col.coloring_of_mapping g (Partition.to_mapping p))
      (Partition.all_valid db)
  in
  (match witness with
  | Some colors ->
    Printf.printf "C5 coloring from the countermodel: ";
    Array.iteri (fun v c -> Printf.printf "%d:%d " v c) colors;
    print_newline ();
    assert (Graph.is_proper_coloring g colors)
  | None -> Printf.printf "no countermodel found (graph not 3-colorable)\n");

  section "Random graphs: reduction vs solver";
  List.iter
    (fun seed ->
      let g = Graph.random ~vertices:5 ~edge_probability:0.5 ~seed in
      describe (Printf.sprintf "rand(#%d)" seed) g)
    [ 1; 2; 3 ]
