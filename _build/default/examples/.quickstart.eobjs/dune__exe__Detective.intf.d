examples/detective.mli:
