examples/quickstart.mli:
