examples/university.mli:
