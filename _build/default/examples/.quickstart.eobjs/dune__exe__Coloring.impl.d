examples/coloring.ml: Array Axioms Cw_database Eval Fmt Graph List Logicaldb Partition Pretty Printf Query Seq Three_col
