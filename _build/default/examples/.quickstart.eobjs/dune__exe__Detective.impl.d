examples/detective.ml: Axioms Certain Cw_database Eval Fmt List Logicaldb Partition Pretty Printf Relation Seq
