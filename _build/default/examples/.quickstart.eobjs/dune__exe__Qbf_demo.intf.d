examples/qbf_demo.mli:
