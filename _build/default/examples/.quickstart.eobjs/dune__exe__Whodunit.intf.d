examples/whodunit.mli:
