examples/coloring.mli:
