examples/university.ml: Axioms Cw_database Fmt List Logicaldb Pretty Printf Relation String Term Ty_database Ty_formula Ty_query Ty_vocabulary
