examples/personnel.mli:
