examples/qbf_demo.ml: Cw_database Fmt Formula List Logicaldb Pretty Printf Qbf Qbf_fo Qbf_so Query
