examples/whodunit.ml: Fmt List Logicaldb Parser Printf Relation Theory Vocabulary
