examples/personnel.ml: Algebra Approx Certain Compile Fmt List Logicaldb Ne_virtual Ph Pretty Printf Relation Translate
