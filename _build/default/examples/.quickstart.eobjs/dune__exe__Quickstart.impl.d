examples/quickstart.ml: Axioms Cw_database Fmt List Logicaldb Pretty Printf Relation Translate
