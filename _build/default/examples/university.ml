(* The typed layer: Reiter's extended relational theories have types,
   which the paper omits "for simplicity". This example registers a
   typed university database and shows how types (a) catch query bugs
   statically, (b) relativize quantifiers, and (c) elaborate into the
   untyped closed-world machinery (type predicates + automatic
   cross-type uniqueness axioms).

   Run with: dune exec examples/university.exe *)

open Logicaldb

let section title = Printf.printf "\n== %s ==\n" title

let vocabulary =
  Ty_vocabulary.make
    ~types:[ "person"; "course" ]
    ~constants:
      [
        ("alice", "person");
        ("bob", "person");
        ("carol", "person");
        ("db_teacher", "person");  (* identity unknown *)
        ("databases", "course");
        ("logic", "course");
        ("algebra", "course");
      ]
    ~predicates:
      [
        ("ENROLLED", [ "person"; "course" ]);
        ("TEACHES", [ "person"; "course" ]);
      ]

let db =
  Ty_database.make ~vocabulary
    ~facts:
      [
        ("ENROLLED", [ "alice"; "databases" ]);
        ("ENROLLED", [ "alice"; "logic" ]);
        ("ENROLLED", [ "bob"; "logic" ]);
        ("TEACHES", [ "carol"; "algebra" ]);
        ("TEACHES", [ "db_teacher"; "databases" ]);
      ]
    ~distinct:
      [
        ("alice", "bob");
        ("alice", "carol");
        ("bob", "carol");
        ("databases", "logic");
        ("databases", "algebra");
        ("logic", "algebra");
      ]

let v = Term.var
let c = Term.const

let () =
  section "The typed database";
  Fmt.pr "%a@." Ty_database.pp db;
  Printf.printf "fully specified: %b  (db_teacher's identity is open)\n"
    (Ty_database.is_fully_specified db);
  Printf.printf "unknown values: %s\n"
    (String.concat ", " (Ty_database.unknown_values db));

  section "Typechecking catches category errors before evaluation";
  let ill_typed =
    Ty_query.make
      [ ("x", "course") ]
      (Ty_formula.Exists
         ("y", "course", Ty_formula.Atom ("ENROLLED", [ v "x"; v "y" ])))
  in
  (match Ty_query.typecheck vocabulary ill_typed with
  | () -> Printf.printf "unexpectedly well-typed?!\n"
  | exception Ty_formula.Type_error msg -> Printf.printf "rejected: %s\n" msg);

  section "Typed quantifiers range over one sort";
  let busy =
    Ty_query.make
      [ ("p", "person") ]
      (Ty_formula.Or
         ( Ty_formula.Exists
             ("x", "course", Ty_formula.Atom ("ENROLLED", [ v "p"; v "x" ])),
           Ty_formula.Exists
             ("x", "course", Ty_formula.Atom ("TEACHES", [ v "p"; v "x" ])) ))
  in
  Fmt.pr "query: %a@." Ty_query.pp busy;
  Fmt.pr "certain busy people: %a@." Relation.pp (Ty_query.certain_answer db busy);
  Fmt.pr "possible busy people: %a@." Relation.pp
    (Ty_query.possible_answer db busy);

  section "The identity question";
  List.iter
    (fun who ->
      let is_who =
        Ty_query.boolean (Ty_formula.Eq (c "db_teacher", c who))
      in
      let not_who =
        Ty_query.boolean
          (Ty_formula.Not (Ty_formula.Eq (c "db_teacher", c who)))
      in
      Printf.printf
        "db_teacher = %-6s  certain: %-5b  certainly-not: %-5b  (open: %b)\n"
        who
        (Ty_query.certain_boolean db is_who)
        (Ty_query.certain_boolean db not_who)
        ((not (Ty_query.certain_boolean db is_who))
        && not (Ty_query.certain_boolean db not_who)))
    [ "alice"; "bob"; "carol" ];

  section "What the elaboration produces";
  let cw = Ty_database.to_cw db in
  Printf.printf "untyped constants: %d, facts: %d, uniqueness axioms: %d\n"
    (List.length (Cw_database.constants cw))
    (List.length (Cw_database.facts cw))
    (List.length (Cw_database.distinct_pairs cw));
  Printf.printf
    "(type membership became ty$person / ty$course facts; cross-type pairs \
     got automatic\n uniqueness axioms; the per-type domain closure is the \
     completion axiom of ty$t)\n";
  Fmt.pr "sample completion: %a@." Pretty.pp_formula
    (Axioms.completion cw "ty$course");

  section "Approximation works through the elaboration, too";
  let nobody_teaches_logic =
    Ty_query.boolean
      (Ty_formula.Forall
         ( "p",
           "person",
           Ty_formula.Not (Ty_formula.Atom ("TEACHES", [ v "p"; c "logic" ])) ))
  in
  Printf.printf "'nobody teaches logic' exact:  %b\n"
    (Ty_query.certain_boolean db nobody_teaches_logic);
  Printf.printf "'nobody teaches logic' approx: %b\n"
    (Ty_query.approx_boolean db nobody_teaches_logic)
