(* The paper's introductory scenario: an employees/departments/managers
   database (Section 2.1's EMP_DEPT / DEPT_MGR query) — here with a
   null value: we know dave works for *some* department recorded under
   the placeholder "dept_of_dave", whose identity is open between the
   real departments.

   This example also demonstrates the "implementation on top of a
   standard DBMS" pipeline: the approximated query is compiled to
   relational algebra and run by the algebra engine.

   Run with: dune exec examples/personnel.exe *)

open Logicaldb

let section title = Printf.printf "\n== %s ==\n" title

let () =
  let db =
    database
      ~predicates:[ ("EMP_DEPT", 2); ("DEPT_MGR", 2) ]
      ~constants:[ "dept_of_dave" ]
      ~facts:
        [
          ("EMP_DEPT", [ "john"; "toys" ]);
          ("EMP_DEPT", [ "mary"; "books" ]);
          ("EMP_DEPT", [ "dave"; "dept_of_dave" ]);
          ("DEPT_MGR", [ "toys"; "sue" ]);
          ("DEPT_MGR", [ "books"; "ann" ]);
        ]
        (* Everything is pairwise distinct except the placeholder
           department, which may be toys or books (but is certainly not
           a person). *)
      ~distinct:
        (let people = [ "john"; "mary"; "dave"; "sue"; "ann" ] in
         let depts = [ "toys"; "books" ] in
         let rec pairs = function
           | [] -> []
           | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
         in
         pairs (people @ depts)
         @ List.map (fun p -> ("dept_of_dave", p)) people)
      ()
  in

  section "Who works where / who manages whom";
  let emp_mgr =
    query "(x1, x2). exists y. EMP_DEPT(x1, y) /\\ DEPT_MGR(y, x2)"
  in
  Fmt.pr "query: %a@." Pretty.pp_query emp_mgr;
  Fmt.pr "certain employee-manager pairs: %a@." Relation.pp
    (certain_answer db emp_mgr);
  Fmt.pr "possible employee-manager pairs: %a@." Relation.pp
    (Certain.possible_answer db emp_mgr);
  Printf.printf
    "(dave has a manager in every model, but no single manager in all \
     models,\n so (dave, _) shows under 'possible' and not under 'certain')\n";

  section "A certain existential about dave";
  Printf.printf "dave certainly has some manager: %b\n"
    (certain db "exists y, z. EMP_DEPT(dave, y) /\\ DEPT_MGR(y, z)");

  section "Negative queries";
  (* john certainly does not work in books: john's department is toys
     and toys ≠ books is an axiom. *)
  Printf.printf "john certainly not in books: %b\n"
    (certain db "~EMP_DEPT(john, books)");
  (* dave's department is open, so neither membership is certain. *)
  Printf.printf "dave certainly not in books:  %b\n"
    (certain db "~EMP_DEPT(dave, books)");

  section "Running on the relational back end (Section 5)";
  let negative = query "(x). ~EMP_DEPT(x, books)" in
  let hat = Translate.query Translate.Semantic negative in
  let ph2 = Ph.ph2 db in
  let plan = Compile.query ph2 hat in
  Fmt.pr "translated query: %a@." Pretty.pp_query hat;
  Fmt.pr "algebra plan (%d nodes):@.  %a@." (Algebra.size plan) Algebra.pp plan;
  let via_algebra =
    Approx.answer ~backend:Approx.Algebra db negative
  in
  let via_direct = Approx.answer db negative in
  Fmt.pr "algebra answer: %a@." Relation.pp via_algebra;
  Fmt.pr "direct answer:  %a@." Relation.pp via_direct;
  Fmt.pr "exact answer:   %a@." Relation.pp (certain_answer db negative);
  assert (Relation.equal via_algebra via_direct);

  section "Storage: the virtual NE relation";
  let nev = Ne_virtual.make db in
  Printf.printf
    "explicit NE pairs: %d;  virtual representation: |U| = %d, |NE'| = %d\n"
    (Ne_virtual.explicit_size db)
    (List.length (Ne_virtual.unknowns nev))
    (List.length (Ne_virtual.stored_pairs nev))
