(* Quickstart: build a CW logical database with an unknown value, then
   compare exact certain-answer evaluation (Theorem 1) with the
   polynomial approximation (Section 5).

   Run with: dune exec examples/quickstart.exe *)

open Logicaldb

let section title = Printf.printf "\n== %s ==\n" title

let show_answer label rel = Fmt.pr "%-42s %a@." label Relation.pp rel

let show_verdict label verdict =
  Printf.printf "%-42s %b\n" label verdict

let () =
  (* TEACHES(socrates, plato) is known; "mystery" is a person whose
     identity is open — no uniqueness axiom separates mystery from
     socrates or plato, so models may identify them. *)
  let db =
    database
      ~predicates:[ ("TEACHES", 2) ]
      ~constants:[ "socrates"; "plato"; "mystery" ]
      ~facts:[ ("TEACHES", [ "socrates"; "plato" ]) ]
      ~distinct:[ ("socrates", "plato") ]
      ()
  in
  section "The database (as a logical theory)";
  List.iter
    (fun axiom -> Fmt.pr "  %a@." Pretty.pp_formula axiom)
    (Axioms.theory db);

  section "Positive queries: approximation is complete (Theorem 13)";
  let teachers = query "(x). exists y. TEACHES(x, y)" in
  show_answer "certain teachers (exact):" (certain_answer db teachers);
  show_answer "certain teachers (approximation):" (approx_answer db teachers);

  section "Negation meets unknown values";
  (* Certainly-not-teaching requires ruling out every model. plato is
     provably not a teacher (plato ≠ socrates is an axiom), but mystery
     might be socrates. *)
  show_verdict "~TEACHES(plato, plato) certain? "
    (certain db "~TEACHES(plato, plato)");
  show_verdict "~TEACHES(plato, plato) by approximation? "
    (approx_certain db "~TEACHES(plato, plato)");
  show_verdict "~TEACHES(mystery, plato) certain? "
    (certain db "~TEACHES(mystery, plato)");
  show_verdict "~TEACHES(mystery, plato) by approximation? "
    (approx_certain db "~TEACHES(mystery, plato)");

  section "Where the approximation is incomplete (soundness only)";
  (* A tautology the approximation cannot see: TEACHES(mystery, plato)
     or its negation — true in every model, but neither disjunct is
     established on Ph₂. *)
  let tautology = "TEACHES(mystery, plato) \\/ ~TEACHES(mystery, plato)" in
  show_verdict "tautology certain (exact)?" (certain db tautology);
  show_verdict "tautology by approximation?" (approx_certain db tautology);

  section "The translated query the approximation runs";
  let negated = query "(x). ~TEACHES(x, plato)" in
  Fmt.pr "  Q  = %a@." Pretty.pp_query negated;
  Fmt.pr "  Q^ = %a@." Pretty.pp_query
    (Translate.query Translate.Semantic negated);
  Fmt.pr "  (alpha$P is the Lemma-10 'provably not in P' predicate)@.";

  section "Engines agree once the database is fully specified";
  let closed = Cw_database.fully_specify db in
  show_answer "exact on closed db:" (certain_answer closed negated);
  show_answer "approximation on closed db:" (approx_answer closed negated);
  Printf.printf "\nDone. See examples/personnel.ml for the paper's intro example.\n"
