(* The paper's Section 2.2 aside, turned into a small whodunit: we may
   not assert ~(jack_the_ripper = disraeli), "since we do not know the
   identity of Jack the Ripper". Uniqueness axioms are knowledge about
   identities; queries behave accordingly.

   The example walks through how adding identity knowledge (uniqueness
   axioms) monotonically sharpens the certain answers, and shows the
   Theorem-1 machinery (mappings / kernel partitions) explicitly.

   Run with: dune exec examples/detective.exe *)

open Logicaldb

let section title = Printf.printf "\n== %s ==\n" title

let suspects = [ "disraeli"; "gladstone"; "sickert" ]

let base_db () =
  database
    ~predicates:[ ("MURDERER", 1); ("IN_LONDON", 1) ]
    ~constants:("jack_the_ripper" :: suspects)
    ~facts:
      [
        ("MURDERER", [ "jack_the_ripper" ]);
        ("IN_LONDON", [ "jack_the_ripper" ]);
        ("IN_LONDON", [ "disraeli" ]);
        ("IN_LONDON", [ "sickert" ]);
      ]
      (* The suspects are known, distinct people; Jack's identity is
         open. *)
    ~distinct:
      (let rec pairs = function
         | [] -> []
         | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
       in
       pairs suspects)
    ()

let report db =
  let murderer_query = query "(x). MURDERER(x)" in
  Fmt.pr "certain murderers:  %a@." Relation.pp (certain_answer db murderer_query);
  Fmt.pr "possible murderers: %a@." Relation.pp
    (Certain.possible_answer db murderer_query);
  Printf.printf "kernel partitions to examine: %d\n" (Partition.count_valid db)

let () =
  let db = base_db () in
  section "Initial knowledge";
  Printf.printf "axioms:\n";
  List.iter (fun f -> Fmt.pr "  %a@." Pretty.pp_formula f) (Axioms.theory db);
  report db;

  section "Deduction 1: the murderer was in London";
  (* Gladstone has no IN_LONDON fact. Is he cleared? Not yet — the
     closed world makes IN_LONDON(gladstone) false *as a fact*, but
     "jack = gladstone" models make him the murderer anyway; in such a
     model the completion axiom for IN_LONDON conflicts... let the
     engine decide. *)
  Printf.printf "certain that some Londoner is the murderer: %b\n"
    (certain db "exists x. MURDERER(x) /\\ IN_LONDON(x)");
  Printf.printf "gladstone possibly the murderer: %b\n"
    (Certain.possible_member db (query "(x). MURDERER(x)") [ "gladstone" ]);

  section "Deduction 2: alibi for Disraeli (add ~(jack = disraeli))";
  let db = Cw_database.add_distinct db "jack_the_ripper" "disraeli" in
  report db;
  Printf.printf "disraeli still possible: %b\n"
    (Certain.possible_member db (query "(x). MURDERER(x)") [ "disraeli" ]);

  section "Deduction 3: alibi for Gladstone too";
  let db = Cw_database.add_distinct db "jack_the_ripper" "gladstone" in
  report db;
  (* Now Jack can only be sickert — or himself, a distinct unknown
     person. He is NOT certainly sickert: the identity could remain
     forever unresolved. *)
  Printf.printf "jack certainly = sickert: %b\n"
    (certain db "jack_the_ripper = sickert");
  Printf.printf "jack possibly = sickert: %b\n"
    (not (certain db "jack_the_ripper != sickert"));

  section "Deduction 4: close the case (fully specify)";
  let closed = Cw_database.fully_specify db in
  report closed;
  Printf.printf
    "fully specified database: one partition, Ph1 answers are exact \
     (Corollary 2)\n";

  section "Theorem 1, visibly";
  let db3 = base_db () in
  Printf.printf
    "each kernel partition of the constants is one 'possible world \
     shape':\n";
  Seq.iter
    (fun p ->
      let world = Partition.quotient p in
      let murderers =
        Eval.answer world (query "(x). MURDERER(x)")
      in
      Fmt.pr "  %a  -->  murderers %a@." Partition.pp p Relation.pp murderers)
    (Partition.all_valid db3)
