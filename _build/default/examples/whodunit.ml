(* Beyond closed-world databases: arbitrary theories as logical
   databases (paper, Section 2.1).

   CW databases store only atomic facts and uniqueness axioms. A
   general logical database is any finite theory — it can express
   DISJUNCTIVE knowledge ("the murderer is the colonel or the butler")
   that no set of atomic facts captures. The paper notes that query
   evaluation over arbitrary theories is undecidable in general [Tr50];
   the Theory module implements the decidable bounded-model
   restriction, which is exact whenever the theory bounds its own
   models (e.g. by a domain-closure axiom).

   Run with: dune exec examples/whodunit.exe *)

open Logicaldb

let section title = Printf.printf "\n== %s ==\n" title
let f = Parser.formula

let vocabulary =
  Vocabulary.make
    ~constants:[ "colonel"; "butler"; "gardener" ]
    ~predicates:[ ("MURDERER", 1); ("HAS_ALIBI", 1) ]

let axioms =
  [
    (* Everybody in the manor is one of the three. *)
    f "forall x. x = colonel \\/ x = butler \\/ x = gardener";
    (* The three are distinct people. *)
    f "colonel != butler";
    f "colonel != gardener";
    f "butler != gardener";
    (* The detective's deductions so far: *)
    f "MURDERER(colonel) \\/ MURDERER(butler)";   (* disjunctive knowledge! *)
    f "exists x. MURDERER(x)";
    f "forall x. MURDERER(x) -> ~HAS_ALIBI(x)";
    f "HAS_ALIBI(gardener)";
  ]

let theory = Theory.make ~vocabulary ~axioms

let ask description sentence =
  Printf.printf "%-46s %b\n" description
    (Theory.entails ~max_domain:3 theory (f sentence))

let () =
  section "The theory (knowledge that CW facts cannot express)";
  Fmt.pr "%a@." Theory.pp theory;
  Printf.printf "\nmodels within the domain bound: %d\n"
    (List.length (List.of_seq (Theory.models ~max_domain:3 theory)));

  section "Certain conclusions (true in every model)";
  ask "someone is the murderer:" "exists x. MURDERER(x)";
  ask "the gardener is innocent:" "~MURDERER(gardener)";
  ask "some murderer lacks an alibi:"
    "exists x. MURDERER(x) /\\ ~HAS_ALIBI(x)";

  section "Open questions (true in some models, false in others)";
  ask "the butler did it:" "MURDERER(butler)";
  ask "the colonel did it:" "MURDERER(colonel)";
  ask "the butler did NOT do it:" "~MURDERER(butler)";

  section "Certain answers to a query";
  let q = Parser.query "(x). ~MURDERER(x)" in
  Fmt.pr "certainly-innocent: %a@." Relation.pp
    (Theory.certain_answers ~max_domain:3 theory q);

  section "New evidence: the colonel produces an alibi";
  let theory' =
    Theory.make ~vocabulary ~axioms:(axioms @ [ f "HAS_ALIBI(colonel)" ])
  in
  Printf.printf "butler certainly guilty now: %b\n"
    (Theory.entails ~max_domain:3 theory' (f "MURDERER(butler)"));
  Printf.printf "models remaining: %d\n"
    (List.length (List.of_seq (Theory.models ~max_domain:3 theory')));

  section "Contradictory evidence collapses the theory";
  let broken =
    Theory.make ~vocabulary
      ~axioms:(axioms @ [ f "HAS_ALIBI(colonel)"; f "HAS_ALIBI(butler)" ])
  in
  Printf.printf "still satisfiable: %b\n"
    (Theory.satisfiable ~max_domain:3 broken)
