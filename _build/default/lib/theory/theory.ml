module Formula = Vardi_logic.Formula
module Query = Vardi_logic.Query
module Vocabulary = Vardi_logic.Vocabulary
module Relation = Vardi_relational.Relation
module Database = Vardi_relational.Database
module Eval = Vardi_relational.Eval

type t = {
  vocabulary : Vocabulary.t;
  axioms : Formula.t list;
}

let check_axiom vocabulary axiom =
  (match Formula.free_vars axiom with
  | [] -> ()
  | x :: _ ->
    invalid_arg (Printf.sprintf "Theory: axiom has free variable %s" x));
  List.iter
    (fun (p, k) ->
      match Vocabulary.arity_opt vocabulary p with
      | None ->
        invalid_arg (Printf.sprintf "Theory: axiom uses undeclared predicate %s" p)
      | Some k' ->
        if k <> k' then
          invalid_arg
            (Printf.sprintf "Theory: predicate %s used with arity %d, declared %d"
               p k k'))
    (Formula.free_preds axiom);
  List.iter
    (fun c ->
      if not (Vocabulary.mem_constant vocabulary c) then
        invalid_arg (Printf.sprintf "Theory: axiom uses undeclared constant %s" c))
    (Formula.constants axiom)

let make ~vocabulary ~axioms =
  List.iter (check_axiom vocabulary) axioms;
  { vocabulary; axioms }

let vocabulary t = t.vocabulary
let axioms t = t.axioms

let of_cw lb =
  {
    vocabulary = Vardi_cwdb.Cw_database.vocabulary lb;
    axioms = Vardi_cwdb.Axioms.theory lb;
  }

let element i = Printf.sprintf "e%d" (i + 1)

(* All assignments of [targets] values to the [sources] list, as assoc
   lists, lazily. *)
let rec assignments sources targets () =
  match sources with
  | [] -> Seq.Cons ([], Seq.empty)
  | x :: rest ->
    Seq.concat_map
      (fun tail -> List.to_seq (List.map (fun y -> (x, y) :: tail) targets))
      (assignments rest targets)
      ()

let models ~max_domain t =
  if max_domain < 1 then invalid_arg "Theory.models: bound must be positive";
  let constants = Vocabulary.constants t.vocabulary in
  let predicates = Vocabulary.predicates t.vocabulary in
  let sizes = Seq.init max_domain (fun i -> i + 1) in
  Seq.concat_map
    (fun n ->
      let domain = List.init n element in
      let constant_maps = assignments constants domain in
      Seq.concat_map
        (fun cmap ->
          (* Lazily fold relation choices for each predicate. *)
          let rec choose = function
            | [] -> Seq.return []
            | (p, k) :: rest ->
              let universe = Relation.full ~domain k in
              Seq.concat_map
                (fun tail ->
                  Seq.map (fun r -> (p, r) :: tail) (Relation.subsets universe))
                (choose rest)
          in
          Seq.filter_map
            (fun relations ->
              let candidate =
                Database.make ~vocabulary:t.vocabulary ~domain ~constants:cmap
                  ~relations
              in
              if List.for_all (Eval.satisfies candidate) t.axioms then
                Some candidate
              else None)
            (choose predicates))
        constant_maps)
    sizes

let satisfiable ~max_domain t =
  not (Seq.is_empty (models ~max_domain t))

let entails ~max_domain t sentence =
  (match Formula.free_vars sentence with
  | [] -> ()
  | x :: _ ->
    invalid_arg (Printf.sprintf "Theory.entails: free variable %s" x));
  Seq.for_all (fun m -> Eval.satisfies m sentence) (models ~max_domain t)

let certain_answers ~max_domain t q =
  let constants = Vocabulary.constants t.vocabulary in
  let k = Query.arity q in
  let candidates = Relation.full ~domain:constants k in
  Seq.fold_left
    (fun survivors m ->
      if Relation.is_empty survivors then survivors
      else
        Relation.filter
          (fun tuple -> Eval.satisfies m (Query.instantiate q tuple))
          survivors)
    candidates (models ~max_domain t)

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@,axioms:@,%a@]" Vocabulary.pp t.vocabulary
    Fmt.(list ~sep:cut (fun ppf f -> Fmt.pf ppf "  %a" Vardi_logic.Pretty.pp_formula f))
    t.axioms
