lib/theory/theory.mli: Fmt Seq Vardi_cwdb Vardi_logic Vardi_relational
