lib/theory/theory.ml: Fmt List Printf Seq Vardi_cwdb Vardi_logic Vardi_relational
