(** General logical databases: arbitrary finite first-order theories
    (paper, Section 2.1).

    "If logical databases can consist of arbitrary theories, or even
    only arbitrary first-order theories, then query evaluation is
    equivalent to testing finite validity in first-order logic, and
    hence is undecidable [Tr50]."

    This module implements the natural decidable restriction: finite
    implication over models with a {e bounded domain}. For CW
    databases the domain-closure axiom bounds every model by [|C|], so
    bounded entailment at bound [|C|] coincides with the exact engines
    (property-tested); for arbitrary theories the bound is a parameter
    and the answers are those certain over all models up to that size —
    a sound approximation of finite implication that becomes exact
    whenever the theory itself bounds its models.

    Everything here is brute force (model enumeration); it exists as a
    semantic reference and for small exploratory theories, not as an
    efficient engine. *)

type t

(** [make ~vocabulary ~axioms] builds a theory.
    @raise Invalid_argument if an axiom has free individual variables,
    uses an undeclared predicate (free predicate symbols must be in the
    vocabulary), an undeclared constant, or a wrong arity. *)
val make :
  vocabulary:Vardi_logic.Vocabulary.t ->
  axioms:Vardi_logic.Formula.t list ->
  t

val vocabulary : t -> Vardi_logic.Vocabulary.t
val axioms : t -> Vardi_logic.Formula.t list

(** [of_cw lb] is the five-component theory of a CW database. *)
val of_cw : Vardi_cwdb.Cw_database.t -> t

(** [models ~max_domain t] lazily enumerates every model of [t] whose
    domain is [{e1, ..., en}] for some [n ≤ max_domain] (element names
    are canonical; models are enumerated up to the names of unused
    elements, not up to isomorphism).

    @raise Invalid_argument when [max_domain < 1] or the enumeration
    space of some relation exceeds
    {!Vardi_relational.Relation.max_enumeration}. *)
val models : max_domain:int -> t -> Vardi_relational.Database.t Seq.t

(** [satisfiable ~max_domain t] — does [t] have a model within the
    bound? (No model within the bound proves nothing beyond it unless
    the theory bounds its own models.) *)
val satisfiable : max_domain:int -> t -> bool

(** [entails ~max_domain t sentence] — does every model within the
    bound satisfy [sentence]?
    @raise Invalid_argument if [sentence] has free variables. *)
val entails : max_domain:int -> t -> Vardi_logic.Formula.t -> bool

(** [certain_answers ~max_domain t q] — the tuples of {e constants}
    [c] with [entails ~max_domain t φ(c)] (the paper's [Q(LB)],
    restricted to bounded models). *)
val certain_answers :
  max_domain:int -> t -> Vardi_logic.Query.t -> Vardi_relational.Relation.t

val pp : t Fmt.t
