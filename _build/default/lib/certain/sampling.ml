module Query = Vardi_logic.Query
module Eval = Vardi_relational.Eval
module Cw_database = Vardi_cwdb.Cw_database
module Partition = Vardi_cwdb.Partition
module Query_check = Vardi_cwdb.Query_check

type verdict =
  | Not_certain
  | Probably_certain

let random_partition ~state lb =
  let constants = Cw_database.constants lb in
  let compatible block c =
    List.for_all (fun d -> not (Cw_database.are_distinct lb c d)) block
  in
  (* Insert each constant into a uniformly random choice among the
     compatible existing blocks and one fresh block. *)
  let blocks =
    List.fold_left
      (fun blocks c ->
        let joinable = List.filter (fun b -> compatible b c) blocks in
        let choice = Random.State.int state (List.length joinable + 1) in
        if choice = List.length joinable then [ c ] :: blocks
        else
          let target = List.nth joinable choice in
          List.map (fun b -> if b == target then c :: b else b) blocks)
      [] constants
  in
  Partition.of_blocks lb blocks

let run ~samples ~seed lb check =
  if samples < 1 then invalid_arg "Sampling: need at least one sample";
  let state = Random.State.make [| seed; samples |] in
  let rec go i =
    if i >= samples then Probably_certain
    else
      let p = random_partition ~state lb in
      if check p then go (i + 1) else Not_certain
  in
  go 0

let boolean ~samples ~seed lb q =
  Query_check.validate lb q;
  if not (Query.is_boolean q) then
    invalid_arg "Sampling.boolean: the query has answer variables";
  run ~samples ~seed lb (fun p ->
      Eval.satisfies (Partition.quotient p) (Query.body q))

let member ~samples ~seed lb q tuple =
  Query_check.validate lb q;
  Query_check.validate_tuple lb q tuple;
  if Query.is_boolean q then
    invalid_arg "Sampling.member: Boolean query; use Sampling.boolean";
  run ~samples ~seed lb (fun p ->
      Eval.member (Partition.quotient p) q
        (List.map (Partition.representative p) tuple))
