(** Countermodel extraction: not just {e whether} a tuple is a certain
    answer, but {e why not}.

    By Theorem 1, [c ∉ Q(LB)] exactly when some respecting mapping's
    image refutes [φ(c)]; the kernel partition of that mapping is a
    {e shape of a possible world} in which the answer fails — a
    user-readable explanation ("...unless mystery and socrates are the
    same person"). *)

type verdict =
  | Certain
      (** the tuple/sentence holds in every possible world *)
  | Refuted_by of Vardi_cwdb.Partition.t
      (** a world shape in which it fails; its {!Vardi_cwdb.Partition.quotient}
          is the countermodel database *)

(** [boolean ?order lb q] explains a Boolean query.
    @raise Invalid_argument as {!Engine.certain_boolean}. *)
val boolean :
  ?order:Vardi_cwdb.Partition.order ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  verdict

(** [member ?order lb q c] explains a candidate answer tuple.
    @raise Invalid_argument as {!Engine.certain_member}. *)
val member :
  ?order:Vardi_cwdb.Partition.order ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  string list ->
  verdict

val pp_verdict : verdict Fmt.t
