module Query = Vardi_logic.Query
module Eval = Vardi_relational.Eval
module Partition = Vardi_cwdb.Partition
module Query_check = Vardi_cwdb.Query_check

type verdict =
  | Certain
  | Refuted_by of Partition.t

let search ?order lb check =
  match
    Seq.find (fun p -> not (check p)) (Partition.all_valid ?order lb)
  with
  | Some p -> Refuted_by p
  | None -> Certain

let boolean ?order lb q =
  Query_check.validate lb q;
  if not (Query.is_boolean q) then
    invalid_arg "Explain.boolean: the query has answer variables";
  search ?order lb (fun p ->
      Eval.satisfies (Partition.quotient p) (Query.body q))

let member ?order lb q tuple =
  Query_check.validate lb q;
  Query_check.validate_tuple lb q tuple;
  if Query.is_boolean q then
    invalid_arg "Explain.member: Boolean query; use Explain.boolean";
  search ?order lb (fun p ->
      Eval.member (Partition.quotient p) q
        (List.map (Partition.representative p) tuple))

let pp_verdict ppf = function
  | Certain -> Fmt.string ppf "certain (holds in every possible world)"
  | Refuted_by p -> Fmt.pf ppf "fails when constants merge as %a" Partition.pp p
