(** Exact evaluation of queries over CW logical databases, by
    Theorem 1:

    [c ∈ Q(LB)]  iff  [h(c) ∈ Q(h(Ph₁(LB)))] for every [h : C → C]
    that respects [T].

    Two interchangeable algorithms:
    - {!Naive_mappings} enumerates all [|C|^|C|] mappings — the literal
      statement of Theorem 1; usable only on tiny databases and kept as
      a cross-validation reference.
    - {!Kernel_partitions} quantifies over kernel partitions instead
      (see {!Vardi_cwdb.Partition}), shrinking the space to at most
      Bell(|C|) and exploiting uniqueness axioms for pruning. This is
      the default.

    Both are exponential in general — necessarily so, since Theorem 5
    shows the problem co-NP-complete — which is the paper's motivation
    for the {!Vardi_approx} approximation. *)

type algorithm =
  | Naive_mappings
  | Kernel_partitions

(** Structure-visit order for [Kernel_partitions] (ignored by
    [Naive_mappings]): [Fresh_first] visits the discrete partition
    first; [Merge_first] visits heavily-merged partitions first, which
    finds countermodels faster when they require merging many unknowns
    (ablation A4). Default: [Fresh_first]. *)
type order = Vardi_cwdb.Partition.order =
  | Fresh_first
  | Merge_first

(** Work counters for the complexity experiments. *)
type stats = {
  structures : int;
    (** image databases examined (mappings or partitions) *)
  evaluations : int;  (** query evaluations performed *)
}

(** [certain_member ?algorithm lb q c] decides [c ∈ Q(LB)], with early
    exit on the first countermodel.

    @raise Invalid_argument when [c]'s length differs from the query
    arity, when a member of [c] is not a constant of [LB], when the
    query mentions a predicate or constant outside the vocabulary of
    [LB], or when the query head is empty (use {!certain_boolean}). *)
val certain_member :
  ?algorithm:algorithm ->
  ?order:order ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  string list ->
  bool

val certain_member_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  string list ->
  bool * stats

(** [certain_boolean ?algorithm lb q] decides [T ⊨f φ] for a Boolean
    query [(). φ] — [LAS(Q)] membership for Boolean queries.
    @raise Invalid_argument if the query is not Boolean or mentions
    symbols outside the vocabulary. *)
val certain_boolean :
  ?algorithm:algorithm ->
  ?order:order ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  bool

val certain_boolean_stats :
  ?algorithm:algorithm ->
  ?order:order ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  bool * stats

(** [answer ?algorithm lb q] is the full certain answer [Q(LB)], a
    relation over the constant set [C]. Computed by filtering [C^k]
    through each examined structure, so each structure is evaluated
    once regardless of the candidate count. *)
val answer :
  ?algorithm:algorithm ->
  ?order:order ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_relational.Relation.t

(** {1 The dual modality}

    A tuple is a {e possible} answer when {e some} respecting mapping
    admits it: [possible_member lb q c] iff
    [∃h. h(c) ∈ Q(h(Ph₁(LB)))]. For Boolean queries,
    [possible φ ⟺ ¬ certain (¬φ)]. Not studied by the paper directly
    but implicit in its model-theoretic semantics; exposed because the
    3-colorability reduction (Theorem 5) naturally asks a possibility
    question. *)

val possible_member :
  ?algorithm:algorithm ->
  ?order:order ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  string list ->
  bool

val possible_boolean :
  ?algorithm:algorithm ->
  ?order:order ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  bool

val possible_answer :
  ?algorithm:algorithm ->
  ?order:order ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_relational.Relation.t

(** [validate lb q] performs the vocabulary/arity checks shared by all
    entry points.
    @raise Invalid_argument on failure. *)
val validate : Vardi_cwdb.Cw_database.t -> Vardi_logic.Query.t -> unit
