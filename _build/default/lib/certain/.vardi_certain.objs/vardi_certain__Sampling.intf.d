lib/certain/sampling.mli: Random Vardi_cwdb Vardi_logic
