lib/certain/explain.mli: Fmt Vardi_cwdb Vardi_logic
