lib/certain/engine.mli: Vardi_cwdb Vardi_logic Vardi_relational
