lib/certain/engine.ml: List Seq Vardi_cwdb Vardi_logic Vardi_relational
