lib/certain/explain.ml: Fmt List Seq Vardi_cwdb Vardi_logic Vardi_relational
