lib/certain/sampling.ml: List Random Vardi_cwdb Vardi_logic Vardi_relational
