(** Monte-Carlo refutation: the dual of the Section 5 approximation.

    The paper's approximation is {e sound but incomplete} — it returns
    only certain answers, possibly missing some. This engine has the
    mirror-image guarantee: it is {e complete but unsound}. It samples
    random respecting mappings [h : C → C]; any sample refuting
    [φ(h(c))] proves [c] non-certain (a genuine countermodel), while
    surviving all samples only suggests certainty.

    Combined use: [Approx] answers "certainly yes", this engine
    answers "certainly no", and the gap between them is the residue on
    which only the exponential exact engine can decide. On random
    workloads the two one-sided engines together decide almost
    everything (experiment E12).

    Sampling is uniform over the (kernel-partition) search space only
    in a heuristic sense: each constant independently either stays
    fresh or merges into a random earlier-compatible block. *)

type verdict =
  | Not_certain  (** a sampled countermodel refuted the query — definitive *)
  | Probably_certain
      (** every sample satisfied the query — {e no} guarantee *)

(** [boolean ~samples ~seed lb q].
    @raise Invalid_argument as {!Engine.certain_boolean}, or when
    [samples < 1]. *)
val boolean :
  samples:int ->
  seed:int ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  verdict

(** [member ~samples ~seed lb q c]. *)
val member :
  samples:int ->
  seed:int ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  string list ->
  verdict

(** [random_partition ~state lb] draws one valid kernel partition. *)
val random_partition :
  state:Random.State.t -> Vardi_cwdb.Cw_database.t -> Vardi_cwdb.Partition.t
