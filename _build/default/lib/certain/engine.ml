module Formula = Vardi_logic.Formula
module Query = Vardi_logic.Query
module Vocabulary = Vardi_logic.Vocabulary
module Relation = Vardi_relational.Relation
module Eval = Vardi_relational.Eval
module Cw_database = Vardi_cwdb.Cw_database
module Mapping = Vardi_cwdb.Mapping
module Partition = Vardi_cwdb.Partition

type algorithm =
  | Naive_mappings
  | Kernel_partitions

type order = Vardi_cwdb.Partition.order =
  | Fresh_first
  | Merge_first

type stats = {
  structures : int;
  evaluations : int;
}

let validate = Vardi_cwdb.Query_check.validate
let validate_tuple = Vardi_cwdb.Query_check.validate_tuple

(* Every examined structure is an image database together with the
   element renaming that produced it, so a candidate tuple [c] over [C]
   is checked as [h(c) ∈ Q(h(Ph₁))]. *)
type structure = {
  image : Vardi_relational.Database.t;
  rename : string -> string;
}

let structures algorithm order lb =
  match algorithm with
  | Naive_mappings ->
    Seq.map
      (fun h -> { image = Mapping.image_db h; rename = Mapping.apply h })
      (Mapping.all_respecting lb)
  | Kernel_partitions ->
    Seq.map
      (fun p ->
        { image = Partition.quotient p; rename = Partition.representative p })
      (Partition.all_valid ~order lb)

let member_in q structure tuple =
  Eval.member structure.image q (List.map structure.rename tuple)

(* Universal quantification over structures, with early exit and work
   counting. [check] receives one structure and says whether the tuple
   (or sentence) survives it. *)
let for_all_structures algorithm order lb check =
  let examined = ref 0 in
  let ok =
    Seq.for_all
      (fun s ->
        incr examined;
        check s)
      (structures algorithm order lb)
  in
  (ok, { structures = !examined; evaluations = !examined })

let exists_structure algorithm order lb check =
  let examined = ref 0 in
  let ok =
    Seq.exists
      (fun s ->
        incr examined;
        check s)
      (structures algorithm order lb)
  in
  (ok, { structures = !examined; evaluations = !examined })

let certain_member_stats ?(algorithm = Kernel_partitions)
    ?(order = Fresh_first) lb q tuple =
  validate lb q;
  validate_tuple lb q tuple;
  if Query.is_boolean q then
    invalid_arg "Certain.certain_member: Boolean query; use certain_boolean";
  for_all_structures algorithm order lb (fun s -> member_in q s tuple)

let certain_member ?algorithm ?order lb q tuple =
  fst (certain_member_stats ?algorithm ?order lb q tuple)

let certain_boolean_stats ?(algorithm = Kernel_partitions)
    ?(order = Fresh_first) lb q =
  validate lb q;
  if not (Query.is_boolean q) then
    invalid_arg "Certain.certain_boolean: the query has answer variables";
  for_all_structures algorithm order lb (fun s ->
      Eval.satisfies s.image (Query.body q))

let certain_boolean ?algorithm ?order lb q =
  fst (certain_boolean_stats ?algorithm ?order lb q)

let possible_member ?(algorithm = Kernel_partitions) ?(order = Fresh_first) lb
    q tuple =
  validate lb q;
  validate_tuple lb q tuple;
  if Query.is_boolean q then
    invalid_arg "Certain.possible_member: Boolean query; use possible_boolean";
  fst (exists_structure algorithm order lb (fun s -> member_in q s tuple))

let possible_boolean ?(algorithm = Kernel_partitions) ?(order = Fresh_first)
    lb q =
  validate lb q;
  if not (Query.is_boolean q) then
    invalid_arg "Certain.possible_boolean: the query has answer variables";
  fst
    (exists_structure algorithm order lb (fun s ->
         Eval.satisfies s.image (Query.body q)))

let candidates lb k =
  Relation.full ~domain:(Cw_database.constants lb) k

(* For whole answers, evaluate the query once per structure and filter
   the surviving candidates, instead of re-running the per-tuple
   decision |C|^k times. *)
let answer ?(algorithm = Kernel_partitions) ?(order = Fresh_first) lb q =
  validate lb q;
  let k = Query.arity q in
  Seq.fold_left
    (fun survivors s ->
      if Relation.is_empty survivors then survivors
      else
        let image_answer = Eval.answer s.image q in
        Relation.filter
          (fun tuple -> Relation.mem (List.map s.rename tuple) image_answer)
          survivors)
    (candidates lb k) (structures algorithm order lb)

let possible_answer ?(algorithm = Kernel_partitions) ?(order = Fresh_first) lb
    q =
  validate lb q;
  let k = Query.arity q in
  Seq.fold_left
    (fun found s ->
      let image_answer = Eval.answer s.image q in
      Relation.union found
        (Relation.filter
           (fun tuple -> Relation.mem (List.map s.rename tuple) image_answer)
           (candidates lb k)))
    (Relation.empty k) (structures algorithm order lb)
