module Term = Vardi_logic.Term
module Formula = Vardi_logic.Formula
module String_map = Map.Make (String)

type t =
  | True
  | False
  | Eq of Term.t * Term.t
  | Atom of string * Term.t list
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists of string * string * t
  | Forall of string * string * t
  | Exists2 of string * string list * t
  | Forall2 of string * string list * t

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let typecheck vocabulary ~env f =
  let term_type var_env = function
    | Term.Var x -> (
      match String_map.find_opt x var_env with
      | Some tau -> tau
      | None -> type_error "unbound variable %s" x)
    | Term.Const c -> (
      try Ty_vocabulary.constant_type vocabulary c
      with Not_found -> type_error "undeclared constant %s" c)
  in
  let check_type tau =
    if not (Ty_vocabulary.mem_type vocabulary tau) then
      type_error "undeclared type %s" tau
  in
  let check_atom var_env so_env p args =
    let signature =
      match String_map.find_opt p so_env with
      | Some s -> s
      | None -> (
        try Ty_vocabulary.signature vocabulary p
        with Not_found -> type_error "undeclared predicate %s" p)
    in
    if List.length signature <> List.length args then
      type_error "predicate %s expects %d arguments, got %d" p
        (List.length signature) (List.length args);
    List.iteri
      (fun i (expected, term) ->
        let actual = term_type var_env term in
        if not (String.equal expected actual) then
          type_error "argument %d of %s has type %s, expected %s" (i + 1) p
            actual expected)
      (List.combine signature args)
  in
  let rec go var_env so_env = function
    | True | False -> ()
    | Eq (s, t) ->
      let ts = term_type var_env s and tt = term_type var_env t in
      if not (String.equal ts tt) then
        type_error "equality between type %s and type %s" ts tt
    | Atom (p, args) -> check_atom var_env so_env p args
    | Not f -> go var_env so_env f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) ->
      go var_env so_env f;
      go var_env so_env g
    | Exists (x, tau, f) | Forall (x, tau, f) ->
      check_type tau;
      go (String_map.add x tau var_env) so_env f
    | Exists2 (p, signature, f) | Forall2 (p, signature, f) ->
      List.iter check_type signature;
      go var_env (String_map.add p signature so_env) f
  in
  let var_env =
    List.fold_left
      (fun acc (x, tau) ->
        check_type tau;
        String_map.add x tau acc)
      String_map.empty env
  in
  go var_env String_map.empty f

let free_vars f =
  let module S = Set.Make (String) in
  let add bound acc = function
    | Term.Var x when not (S.mem x bound) -> x :: acc
    | Term.Var _ | Term.Const _ -> acc
  in
  let rec go bound acc = function
    | True | False -> acc
    | Eq (s, t) -> add bound (add bound acc s) t
    | Atom (_, ts) -> List.fold_left (add bound) acc ts
    | Not f -> go bound acc f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) ->
      go bound (go bound acc f) g
    | Exists (x, _, f) | Forall (x, _, f) -> go (S.add x bound) acc f
    | Exists2 (_, _, f) | Forall2 (_, _, f) -> go bound acc f
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    (List.rev (go S.empty [] f))

(* Well-formedness guard for a quantified predicate variable:
   ∀x1..xk (P(x) → ty$τ1(x1) ∧ ... ∧ ty$τk(xk)). *)
let signature_guard p signature =
  let vars = List.mapi (fun i _ -> Printf.sprintf "ty_x%d" i) signature in
  let terms = List.map Term.var vars in
  let typed =
    Formula.conj
      (List.map2
         (fun tau t -> Formula.Atom (Ty_vocabulary.type_predicate tau, [ t ]))
         signature terms)
  in
  Formula.forall_many vars (Formula.Implies (Formula.Atom (p, terms), typed))

let rec erase = function
  | True -> Formula.True
  | False -> Formula.False
  | Eq (s, t) -> Formula.Eq (s, t)
  | Atom (p, args) -> Formula.Atom (p, args)
  | Not f -> Formula.Not (erase f)
  | And (f, g) -> Formula.And (erase f, erase g)
  | Or (f, g) -> Formula.Or (erase f, erase g)
  | Implies (f, g) -> Formula.Implies (erase f, erase g)
  | Iff (f, g) -> Formula.Iff (erase f, erase g)
  | Exists (x, tau, f) ->
    Formula.Exists
      ( x,
        Formula.And
          (Formula.Atom (Ty_vocabulary.type_predicate tau, [ Term.var x ]), erase f)
      )
  | Forall (x, tau, f) ->
    Formula.Forall
      ( x,
        Formula.Implies
          (Formula.Atom (Ty_vocabulary.type_predicate tau, [ Term.var x ]), erase f)
      )
  | Exists2 (p, signature, f) ->
    Formula.Exists2
      ( p,
        List.length signature,
        Formula.And (signature_guard p signature, erase f) )
  | Forall2 (p, signature, f) ->
    Formula.Forall2
      ( p,
        List.length signature,
        Formula.Implies (signature_guard p signature, erase f) )

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Eq (s, t) -> Fmt.pf ppf "%a = %a" Term.pp s Term.pp t
  | Atom (p, []) -> Fmt.pf ppf "%s()" p
  | Atom (p, args) ->
    Fmt.pf ppf "%s(%a)" p Fmt.(list ~sep:(any ", ") Term.pp) args
  | Not f -> Fmt.pf ppf "~(%a)" pp f
  | And (f, g) -> Fmt.pf ppf "(%a /\\ %a)" pp f pp g
  | Or (f, g) -> Fmt.pf ppf "(%a \\/ %a)" pp f pp g
  | Implies (f, g) -> Fmt.pf ppf "(%a -> %a)" pp f pp g
  | Iff (f, g) -> Fmt.pf ppf "(%a <-> %a)" pp f pp g
  | Exists (x, tau, f) -> Fmt.pf ppf "exists %s : %s. %a" x tau pp f
  | Forall (x, tau, f) -> Fmt.pf ppf "forall %s : %s. %a" x tau pp f
  | Exists2 (p, s, f) ->
    Fmt.pf ppf "exists2 %s : %s. %a" p (String.concat " x " s) pp f
  | Forall2 (p, s, f) ->
    Fmt.pf ppf "forall2 %s : %s. %a" p (String.concat " x " s) pp f
