module String_map = Map.Make (String)
module Vocabulary = Vardi_logic.Vocabulary

type t = {
  types : string list;  (* sorted *)
  constants : string String_map.t;  (* constant -> type *)
  predicates : string list String_map.t;  (* predicate -> signature *)
}

let reserved_prefix = "ty$"
let type_predicate tau = reserved_prefix ^ tau

let reserved name =
  String.length name >= String.length reserved_prefix
  && String.equal (String.sub name 0 (String.length reserved_prefix)) reserved_prefix

let check_name what name =
  if reserved name then
    invalid_arg
      (Printf.sprintf "Ty_vocabulary: %s %s uses the reserved ty$ prefix" what
         name)

let make ~types ~constants ~predicates =
  List.iter (check_name "type") types;
  let type_set = List.sort_uniq String.compare types in
  let check_type context tau =
    if not (List.mem tau type_set) then
      invalid_arg
        (Printf.sprintf "Ty_vocabulary: %s mentions undeclared type %s" context
           tau)
  in
  let constant_map =
    List.fold_left
      (fun acc (c, tau) ->
        check_name "constant" c;
        check_type (Printf.sprintf "constant %s" c) tau;
        match String_map.find_opt c acc with
        | Some tau' when not (String.equal tau tau') ->
          invalid_arg
            (Printf.sprintf "Ty_vocabulary: constant %s declared as %s and %s" c
               tau' tau)
        | Some _ | None -> String_map.add c tau acc)
      String_map.empty constants
  in
  let predicate_map =
    List.fold_left
      (fun acc (p, signature) ->
        check_name "predicate" p;
        if String.equal p "=" then
          invalid_arg "Ty_vocabulary: equality is built in";
        List.iter (check_type (Printf.sprintf "predicate %s" p)) signature;
        match String_map.find_opt p acc with
        | Some s when not (List.equal String.equal s signature) ->
          invalid_arg
            (Printf.sprintf "Ty_vocabulary: predicate %s declared twice" p)
        | Some _ | None -> String_map.add p signature acc)
      String_map.empty predicates
  in
  { types = type_set; constants = constant_map; predicates = predicate_map }

let types v = v.types
let constants v = String_map.bindings v.constants
let predicates v = String_map.bindings v.predicates

let constant_type v c =
  match String_map.find_opt c v.constants with
  | Some tau -> tau
  | None -> raise Not_found

let signature v p =
  match String_map.find_opt p v.predicates with
  | Some s -> s
  | None -> raise Not_found

let mem_type v tau = List.mem tau v.types
let mem_constant v c = String_map.mem c v.constants
let mem_predicate v p = String_map.mem p v.predicates

let constants_of_type v tau =
  String_map.fold
    (fun c tau' acc -> if String.equal tau tau' then c :: acc else acc)
    v.constants []
  |> List.sort String.compare

let untyped v =
  Vocabulary.make
    ~constants:(List.map fst (constants v))
    ~predicates:
      (List.map (fun (p, s) -> (p, List.length s)) (predicates v)
      @ List.map (fun tau -> (type_predicate tau, 1)) v.types)

let pp ppf v =
  let pp_constant ppf (c, tau) = Fmt.pf ppf "%s : %s" c tau in
  let pp_predicate ppf (p, s) =
    Fmt.pf ppf "%s(%s)" p (String.concat ", " s)
  in
  Fmt.pf ppf "@[<v>types: %a@,constants: %a@,predicates: %a@]"
    Fmt.(list ~sep:comma string)
    v.types
    Fmt.(list ~sep:(any "; ") pp_constant)
    (constants v)
    Fmt.(list ~sep:(any "; ") pp_predicate)
    (predicates v)
