(** Typed first- and second-order formulas: quantifiers carry the type
    they range over, predicate variables carry signatures. *)

type t =
  | True
  | False
  | Eq of Vardi_logic.Term.t * Vardi_logic.Term.t
  | Atom of string * Vardi_logic.Term.t list
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists of string * string * t  (** [(∃x : τ) φ] *)
  | Forall of string * string * t
  | Exists2 of string * string list * t  (** [(∃P : τ₁×...×τₖ) φ] *)
  | Forall2 of string * string list * t

exception Type_error of string

(** [typecheck vocabulary ~env f] verifies that [f] is well-typed:
    every atom's arguments match its signature (user predicates from
    the vocabulary, predicate variables from their binders), both sides
    of an equality have the same type, every variable is bound (by a
    quantifier or by [env]), every constant is declared, and every
    quantifier ranges over a declared type.

    [env] assigns types to free variables (the query head).

    @raise Type_error with a descriptive message on violations. *)
val typecheck : Ty_vocabulary.t -> env:(string * string) list -> t -> unit

(** Free individual variables, in first-occurrence order. *)
val free_vars : t -> string list

(** [erase vocabulary f] is the untyped formula: typed quantifiers are
    relativized through the generated type predicates —
    [(∃x:τ)φ ↦ ∃x (ty$τ(x) ∧ φ)], [(∀x:τ)φ ↦ ∀x (ty$τ(x) → φ)] — and
    second-order binders get signature guards:
    [(∃P:σ)φ ↦ ∃P (wf_σ(P) ∧ φ)] where [wf_σ(P) = ∀x (P(x) → ⋀ ty$τᵢ(xᵢ))]
    (dually with [→] for [∀P]).

    [erase] does not typecheck; call {!typecheck} first. *)
val erase : t -> Vardi_logic.Formula.t

val pp : t Fmt.t
