(** Typed relational vocabularies.

    The paper works untyped "for simplicity"; Reiter's extended
    relational theories [Re84, Re86] are {e typed}: each constant
    carries a type, each predicate a signature, and quantifiers range
    over one type. This module (with {!Ty_database} and {!Elaborate})
    restores that generality on top of the untyped core: types become
    unary predicates, typed quantifiers relativize, and cross-type
    constants get automatic uniqueness axioms (distinct types denote
    disjoint sorts of objects). *)

type t

(** [make ~types ~constants ~predicates] with [constants] as
    [(name, type)] and [predicates] as [(name, argument types)].

    @raise Invalid_argument when a constant or predicate mentions an
    undeclared type, a name is declared twice inconsistently, a
    predicate is named ["="], or a name uses the reserved ["ty$"]
    prefix. *)
val make :
  types:string list ->
  constants:(string * string) list ->
  predicates:(string * string list) list ->
  t

val types : t -> string list
val constants : t -> (string * string) list
val predicates : t -> (string * string list) list

(** [constant_type v c].
    @raise Not_found when undeclared. *)
val constant_type : t -> string -> string

(** [signature v p].
    @raise Not_found when undeclared. *)
val signature : t -> string -> string list

val mem_type : t -> string -> bool
val mem_constant : t -> string -> bool
val mem_predicate : t -> string -> bool

(** Constants of one type, sorted. *)
val constants_of_type : t -> string -> string list

(** The reserved prefix for generated type predicates: ["ty$"]. *)
val reserved_prefix : string

(** [type_predicate tau] is the untyped predicate name encoding type
    [tau]. *)
val type_predicate : string -> string

(** The untyped vocabulary this elaborates to: all constants, all
    predicates (arities only), plus one unary type predicate per
    type. *)
val untyped : t -> Vardi_logic.Vocabulary.t

val pp : t Fmt.t
