(** Parser for the typed concrete syntax.

    Grammar differences from the untyped {!Vardi_logic.Parser}:
    - quantifier binders carry types: [exists x : person. φ],
      [forall x : person, y : course. φ];
    - second-order binders carry signatures:
      [exists2 Q : (person, course). φ];
    - query heads are typed: [(x : person, y : course). φ].

    The connective grammar (precedences, [~], [/\ ], [\/], [->],
    [<->], [=], [!=], comments) is identical. Variable/constant
    disambiguation is contextual as in the untyped parser. *)

exception Parse_error of int * string

(** [formula ~free_vars s] parses a typed formula; [free_vars] names
    identifiers to read as variables (their types come from the
    caller, e.g. a query head).
    @raise Parse_error / {!Vardi_logic.Lexer.Lex_error}. *)
val formula : ?free_vars:string list -> string -> Ty_formula.t

(** [query s] parses [(x1 : τ1, ..., xk : τk). φ]. *)
val query : string -> Ty_query.t

(** Printer whose output {!formula} accepts (round-trip tested). *)
val pp_formula : Ty_formula.t Fmt.t

val pp_query : Ty_query.t Fmt.t
