module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module Certain = Vardi_certain.Engine
module Approx = Vardi_approx.Evaluate

type t = {
  head : (string * string) list;
  body : Ty_formula.t;
}

let make head body =
  let rec check_distinct = function
    | [] -> ()
    | (x, _) :: rest ->
      if List.mem_assoc x rest then
        invalid_arg (Printf.sprintf "Ty_query: duplicate head variable %s" x);
      check_distinct rest
  in
  check_distinct head;
  List.iter
    (fun x ->
      if not (List.mem_assoc x head) then
        invalid_arg
          (Printf.sprintf "Ty_query: free variable %s missing from head" x))
    (Ty_formula.free_vars body);
  { head; body }

let boolean body = make [] body

let typecheck vocabulary q =
  Ty_formula.typecheck vocabulary ~env:q.head q.body

let erase q =
  let head_guards =
    List.map
      (fun (x, tau) ->
        Formula.Atom (Ty_vocabulary.type_predicate tau, [ Term.var x ]))
      q.head
  in
  Query.make (List.map fst q.head)
    (Formula.conj (head_guards @ [ Ty_formula.erase q.body ]))

let prepare db q =
  typecheck (Ty_database.vocabulary db) q;
  (Ty_database.to_cw db, erase q)

let certain_answer db q =
  let cw, uq = prepare db q in
  Certain.answer cw uq

let possible_answer db q =
  let cw, uq = prepare db q in
  Certain.possible_answer cw uq

let approx_answer db q =
  let cw, uq = prepare db q in
  Approx.answer cw uq

let certain_boolean db q =
  let cw, uq = prepare db q in
  Certain.certain_boolean cw uq

let approx_boolean db q =
  let cw, uq = prepare db q in
  Approx.boolean cw uq

let pp ppf q =
  let pp_binding ppf (x, tau) = Fmt.pf ppf "%s : %s" x tau in
  Fmt.pf ppf "(%a). %a"
    Fmt.(list ~sep:(any ", ") pp_binding)
    q.head Ty_formula.pp q.body
