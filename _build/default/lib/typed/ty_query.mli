(** Typed queries and their evaluation through the untyped engines.

    A typed query [(x₁:τ₁, ..., xₖ:τₖ). φ] elaborates to the untyped
    query whose body is the relativized [erase φ] with the head
    variables constrained to their types, and is then evaluated by any
    of the untyped engines. Answers are relations over constants whose
    columns respect the head types by construction. *)

type t = private {
  head : (string * string) list;  (** answer variables with their types *)
  body : Ty_formula.t;
}

(** [make head body].
    @raise Invalid_argument on duplicate head variables or a free
    body variable missing from the head. *)
val make : (string * string) list -> Ty_formula.t -> t

val boolean : Ty_formula.t -> t

(** [typecheck vocabulary q].
    @raise Ty_formula.Type_error on ill-typed queries. *)
val typecheck : Ty_vocabulary.t -> t -> unit

(** [erase q] is the untyped query. Head variables [x:τ] contribute a
    conjunct [ty$τ(x)] so that answers stay inside their declared
    types. *)
val erase : t -> Vardi_logic.Query.t

(** {1 Evaluation} — each function typechecks, elaborates database and
    query, and runs the corresponding untyped engine. *)

val certain_answer : Ty_database.t -> t -> Vardi_relational.Relation.t
val possible_answer : Ty_database.t -> t -> Vardi_relational.Relation.t
val approx_answer : Ty_database.t -> t -> Vardi_relational.Relation.t
val certain_boolean : Ty_database.t -> t -> bool
val approx_boolean : Ty_database.t -> t -> bool

val pp : t Fmt.t
