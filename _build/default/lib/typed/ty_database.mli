(** Typed CW logical databases — Reiter's extended relational theories
    with their types restored (the paper drops them "for simplicity").

    A typed database elaborates to an untyped {!Vardi_cwdb.Cw_database}:
    - one unary predicate [ty$τ] per type, with a fact per constant of
      that type (its completion axiom {e is} the per-type domain
      closure);
    - automatic uniqueness axioms between constants of different types
      (sorts denote disjoint object kinds);
    - the user's facts and same-type uniqueness axioms unchanged. *)

type t

(** [make ~vocabulary ~facts ~distinct].
    @raise Invalid_argument when a fact's arguments violate its
    predicate's signature, a distinct pair mentions an undeclared
    constant, or (redundantly but harmlessly) pairs constants of
    different types — those axioms hold automatically and are
    accepted. *)
val make :
  vocabulary:Ty_vocabulary.t ->
  facts:(string * string list) list ->
  distinct:(string * string) list ->
  t

val vocabulary : t -> Ty_vocabulary.t

(** A typed database is fully specified when every {e same-type} pair
    of constants carries a uniqueness axiom (cross-type pairs always
    do). *)
val is_fully_specified : t -> bool

val fully_specify : t -> t

(** Unknown values, i.e. constants not separated from every other
    constant {e of their own type}. *)
val unknown_values : t -> string list

(** The untyped elaboration. *)
val to_cw : t -> Vardi_cwdb.Cw_database.t

val pp : t Fmt.t
