module Cw_database = Vardi_cwdb.Cw_database

type t = {
  vocabulary : Ty_vocabulary.t;
  facts : (string * string list) list;
  distinct : (string * string) list;  (* same-type pairs only *)
}

let check_fact vocabulary (p, args) =
  let signature =
    try Ty_vocabulary.signature vocabulary p
    with Not_found ->
      invalid_arg (Printf.sprintf "Ty_database: undeclared predicate %s" p)
  in
  if List.length signature <> List.length args then
    invalid_arg
      (Printf.sprintf "Ty_database: %s expects %d arguments, got %d" p
         (List.length signature) (List.length args));
  List.iteri
    (fun i (tau, c) ->
      let actual =
        try Ty_vocabulary.constant_type vocabulary c
        with Not_found ->
          invalid_arg (Printf.sprintf "Ty_database: undeclared constant %s" c)
      in
      if not (String.equal actual tau) then
        invalid_arg
          (Printf.sprintf
             "Ty_database: argument %d of %s(%s) has type %s, expected %s"
             (i + 1) p (String.concat ", " args) actual tau))
    (List.combine signature args)

let same_type vocabulary c d =
  String.equal
    (Ty_vocabulary.constant_type vocabulary c)
    (Ty_vocabulary.constant_type vocabulary d)

let make ~vocabulary ~facts ~distinct =
  List.iter (check_fact vocabulary) facts;
  let distinct =
    List.filter
      (fun (c, d) ->
        List.iter
          (fun x ->
            if not (Ty_vocabulary.mem_constant vocabulary x) then
              invalid_arg
                (Printf.sprintf "Ty_database: undeclared constant %s" x))
          [ c; d ];
        if String.equal c d then
          invalid_arg
            (Printf.sprintf "Ty_database: inconsistent axiom ~(%s = %s)" c d);
        (* Cross-type distinctness is automatic; keep only the
           informative same-type axioms. *)
        same_type vocabulary c d)
      distinct
  in
  { vocabulary; facts; distinct }

let vocabulary db = db.vocabulary

let same_type_pairs db =
  let constants = List.map fst (Ty_vocabulary.constants db.vocabulary) in
  let rec pairs = function
    | [] -> []
    | c :: rest ->
      List.filter_map
        (fun d -> if same_type db.vocabulary c d then Some (c, d) else None)
        rest
      @ pairs rest
  in
  pairs constants

let are_distinct db c d =
  List.exists
    (fun (a, b) ->
      (String.equal a c && String.equal b d)
      || (String.equal a d && String.equal b c))
    db.distinct

let is_fully_specified db =
  List.for_all (fun (c, d) -> are_distinct db c d) (same_type_pairs db)

let fully_specify db = { db with distinct = same_type_pairs db }

let unknown_values db =
  let constants = List.map fst (Ty_vocabulary.constants db.vocabulary) in
  List.filter
    (fun c ->
      List.exists
        (fun d ->
          (not (String.equal c d))
          && same_type db.vocabulary c d
          && not (are_distinct db c d))
        constants)
    constants

let to_cw db =
  let vocabulary = db.vocabulary in
  let type_facts =
    List.map
      (fun (c, tau) -> (Ty_vocabulary.type_predicate tau, [ c ]))
      (Ty_vocabulary.constants vocabulary)
  in
  let cross_type =
    let constants = List.map fst (Ty_vocabulary.constants vocabulary) in
    let rec pairs = function
      | [] -> []
      | c :: rest ->
        List.filter_map
          (fun d -> if same_type vocabulary c d then None else Some (c, d))
          rest
        @ pairs rest
    in
    pairs constants
  in
  Cw_database.make
    ~vocabulary:(Ty_vocabulary.untyped vocabulary)
    ~facts:
      (List.map
         (fun (pred, args) -> { Cw_database.pred; args })
         (db.facts @ type_facts))
    ~distinct:(db.distinct @ cross_type)

let pp ppf db =
  let pp_fact ppf (p, args) =
    Fmt.pf ppf "%s(%s)" p (String.concat ", " args)
  in
  let pp_pair ppf (c, d) = Fmt.pf ppf "%s != %s" c d in
  Fmt.pf ppf "@[<v>%a@,facts: %a@,distinct: %a@]" Ty_vocabulary.pp db.vocabulary
    Fmt.(list ~sep:(any "; ") pp_fact)
    db.facts
    Fmt.(list ~sep:(any "; ") pp_pair)
    db.distinct
