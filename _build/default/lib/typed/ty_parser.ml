module Lexer = Vardi_logic.Lexer
module Term = Vardi_logic.Term

exception Parse_error of int * string

module String_set = Set.Make (String)

type state = {
  tokens : Lexer.located array;
  mutable cursor : int;
}

let peek st = st.tokens.(st.cursor)
let advance st = st.cursor <- st.cursor + 1

let next st =
  let t = peek st in
  advance st;
  t

let error located msg = raise (Parse_error (located.Lexer.pos, msg))

let expect st token what =
  let t = next st in
  if t.Lexer.token <> token then
    error t
      (Fmt.str "expected %s but found %a" what Lexer.pp_token t.Lexer.token)

let ident st what =
  let t = next st in
  match t.Lexer.token with
  | Lexer.IDENT s -> s
  | Lexer.INT i -> string_of_int i
  | other -> error t (Fmt.str "expected %s but found %a" what Lexer.pp_token other)

(* [x : tau, y : tau', ...] *)
let rec typed_binders st acc =
  let x = ident st "a variable name" in
  expect st Lexer.COLON "':' before the variable's type";
  let tau = ident st "a type name" in
  match (peek st).Lexer.token with
  | Lexer.COMMA ->
    advance st;
    typed_binders st ((x, tau) :: acc)
  | _ -> List.rev ((x, tau) :: acc)

(* [Q : (tau, tau'), ...] *)
let rec so_binders st acc =
  let p = ident st "a predicate name" in
  expect st Lexer.COLON "':' before the predicate's signature";
  expect st Lexer.LPAREN "'(' opening the signature";
  let rec types acc =
    let tau = ident st "a type name" in
    match (peek st).Lexer.token with
    | Lexer.COMMA ->
      advance st;
      types (tau :: acc)
    | _ -> List.rev (tau :: acc)
  in
  let signature =
    match (peek st).Lexer.token with
    | Lexer.RPAREN -> []
    | _ -> types []
  in
  expect st Lexer.RPAREN "')' closing the signature";
  match (peek st).Lexer.token with
  | Lexer.COMMA ->
    advance st;
    so_binders st ((p, signature) :: acc)
  | _ -> List.rev ((p, signature) :: acc)

let term_of_ident vars name =
  if String_set.mem name vars then Term.Var name else Term.Const name

let rec parse_iff st vars =
  let lhs = parse_implies st vars in
  parse_iff_tail st vars lhs

and parse_iff_tail st vars acc =
  match (peek st).Lexer.token with
  | Lexer.DARROW ->
    advance st;
    let rhs = parse_implies st vars in
    parse_iff_tail st vars (Ty_formula.Iff (acc, rhs))
  | _ -> acc

and parse_implies st vars =
  let lhs = parse_or st vars in
  match (peek st).Lexer.token with
  | Lexer.ARROW ->
    advance st;
    let rhs = parse_implies st vars in
    Ty_formula.Implies (lhs, rhs)
  | _ -> lhs

and parse_or st vars =
  let lhs = parse_and st vars in
  parse_or_tail st vars lhs

and parse_or_tail st vars acc =
  match (peek st).Lexer.token with
  | Lexer.OR ->
    advance st;
    let rhs = parse_and st vars in
    parse_or_tail st vars (Ty_formula.Or (acc, rhs))
  | _ -> acc

and parse_and st vars =
  let lhs = parse_unary st vars in
  parse_and_tail st vars lhs

and parse_and_tail st vars acc =
  match (peek st).Lexer.token with
  | Lexer.AND ->
    advance st;
    let rhs = parse_unary st vars in
    parse_and_tail st vars (Ty_formula.And (acc, rhs))
  | _ -> acc

and parse_unary st vars =
  match (peek st).Lexer.token with
  | Lexer.NOT ->
    advance st;
    Ty_formula.Not (parse_unary st vars)
  | Lexer.EXISTS ->
    advance st;
    let binders = typed_binders st [] in
    expect st Lexer.DOT "'.' after the quantified variables";
    let vars' =
      List.fold_left (fun s (x, _) -> String_set.add x s) vars binders
    in
    let body = parse_iff st vars' in
    List.fold_right
      (fun (x, tau) f -> Ty_formula.Exists (x, tau, f))
      binders body
  | Lexer.FORALL ->
    advance st;
    let binders = typed_binders st [] in
    expect st Lexer.DOT "'.' after the quantified variables";
    let vars' =
      List.fold_left (fun s (x, _) -> String_set.add x s) vars binders
    in
    let body = parse_iff st vars' in
    List.fold_right
      (fun (x, tau) f -> Ty_formula.Forall (x, tau, f))
      binders body
  | Lexer.EXISTS2 ->
    advance st;
    let binders = so_binders st [] in
    expect st Lexer.DOT "'.' after the quantified predicates";
    let body = parse_iff st vars in
    List.fold_right
      (fun (p, s) f -> Ty_formula.Exists2 (p, s, f))
      binders body
  | Lexer.FORALL2 ->
    advance st;
    let binders = so_binders st [] in
    expect st Lexer.DOT "'.' after the quantified predicates";
    let body = parse_iff st vars in
    List.fold_right
      (fun (p, s) f -> Ty_formula.Forall2 (p, s, f))
      binders body
  | _ -> parse_atomic st vars

and parse_atomic st vars =
  let t = next st in
  match t.Lexer.token with
  | Lexer.TRUE -> Ty_formula.True
  | Lexer.FALSE -> Ty_formula.False
  | Lexer.LPAREN ->
    let f = parse_iff st vars in
    expect st Lexer.RPAREN "')'";
    f
  | Lexer.IDENT name -> parse_after_name st vars name
  | Lexer.INT i -> parse_after_name st vars (string_of_int i)
  | other ->
    error t (Fmt.str "expected a formula but found %a" Lexer.pp_token other)

and parse_after_name st vars name =
  match (peek st).Lexer.token with
  | Lexer.LPAREN ->
    advance st;
    let args =
      match (peek st).Lexer.token with
      | Lexer.RPAREN -> []
      | _ -> parse_terms st vars []
    in
    expect st Lexer.RPAREN "')' closing the argument list";
    Ty_formula.Atom (name, args)
  | Lexer.EQ ->
    advance st;
    let rhs = parse_term st vars in
    Ty_formula.Eq (term_of_ident vars name, rhs)
  | Lexer.NEQ ->
    advance st;
    let rhs = parse_term st vars in
    Ty_formula.Not (Ty_formula.Eq (term_of_ident vars name, rhs))
  | other ->
    error (peek st)
      (Fmt.str "expected '(', '=' or '!=' after %s but found %a" name
         Lexer.pp_token other)

and parse_terms st vars acc =
  let t = parse_term st vars in
  match (peek st).Lexer.token with
  | Lexer.COMMA ->
    advance st;
    parse_terms st vars (t :: acc)
  | _ -> List.rev (t :: acc)

and parse_term st vars =
  let name = ident st "a term" in
  term_of_ident vars name

let make_state input =
  { tokens = Array.of_list (Lexer.tokenize input); cursor = 0 }

let finish st what =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.EOF -> ()
  | other ->
    error t (Fmt.str "trailing input after %s: %a" what Lexer.pp_token other)

let formula ?(free_vars = []) input =
  let st = make_state input in
  let f = parse_iff st (String_set.of_list free_vars) in
  finish st "the formula";
  f

let query input =
  let st = make_state input in
  expect st Lexer.LPAREN "'(' opening the query head";
  let head =
    match (peek st).Lexer.token with
    | Lexer.RPAREN -> []
    | _ -> typed_binders st []
  in
  expect st Lexer.RPAREN "')' closing the query head";
  expect st Lexer.DOT "'.' after the query head";
  let vars = String_set.of_list (List.map fst head) in
  let body = parse_iff st vars in
  finish st "the query";
  Ty_query.make head body

(* Printing in the same syntax, with the same precedence scheme as the
   untyped pretty-printer. *)

let level = function
  | Ty_formula.Iff _ | Ty_formula.Exists _ | Ty_formula.Forall _
  | Ty_formula.Exists2 _ | Ty_formula.Forall2 _ ->
    0
  | Ty_formula.Implies _ -> 1
  | Ty_formula.Or _ -> 2
  | Ty_formula.And _ -> 3
  | Ty_formula.Not (Ty_formula.Eq _) -> 5
  | Ty_formula.Not _ -> 4
  | Ty_formula.True | Ty_formula.False | Ty_formula.Eq _ | Ty_formula.Atom _ ->
    5

let pp_binding ppf (x, tau) = Fmt.pf ppf "%s : %s" x tau

let pp_signature ppf (p, signature) =
  Fmt.pf ppf "%s : (%a)" p Fmt.(list ~sep:(any ", ") string) signature

let rec collect_exists acc = function
  | Ty_formula.Exists (x, tau, f) -> collect_exists ((x, tau) :: acc) f
  | f -> (List.rev acc, f)

let rec collect_forall acc = function
  | Ty_formula.Forall (x, tau, f) -> collect_forall ((x, tau) :: acc) f
  | f -> (List.rev acc, f)

let rec pp_at min_level ppf f =
  let lvl = level f in
  if lvl < min_level then Fmt.pf ppf "(%a)" (pp_at 0) f
  else
    match f with
    | Ty_formula.True -> Fmt.string ppf "true"
    | Ty_formula.False -> Fmt.string ppf "false"
    | Ty_formula.Eq (s, t) -> Fmt.pf ppf "%a = %a" Term.pp s Term.pp t
    | Ty_formula.Not (Ty_formula.Eq (s, t)) ->
      Fmt.pf ppf "%a != %a" Term.pp s Term.pp t
    | Ty_formula.Atom (p, []) -> Fmt.pf ppf "%s()" p
    | Ty_formula.Atom (p, ts) ->
      Fmt.pf ppf "%s(%a)" p Fmt.(list ~sep:(any ", ") Term.pp) ts
    | Ty_formula.Not f -> Fmt.pf ppf "~%a" (pp_at 4) f
    | Ty_formula.And (f, g) -> Fmt.pf ppf "%a /\\ %a" (pp_at 3) f (pp_at 4) g
    | Ty_formula.Or (f, g) -> Fmt.pf ppf "%a \\/ %a" (pp_at 2) f (pp_at 3) g
    | Ty_formula.Implies (f, g) ->
      Fmt.pf ppf "%a -> %a" (pp_at 2) f (pp_at 1) g
    | Ty_formula.Iff (f, g) -> Fmt.pf ppf "%a <-> %a" (pp_at 1) f (pp_at 1) g
    | Ty_formula.Exists _ ->
      let binders, body = collect_exists [] f in
      Fmt.pf ppf "exists %a. %a"
        Fmt.(list ~sep:(any ", ") pp_binding)
        binders (pp_at 0) body
    | Ty_formula.Forall _ ->
      let binders, body = collect_forall [] f in
      Fmt.pf ppf "forall %a. %a"
        Fmt.(list ~sep:(any ", ") pp_binding)
        binders (pp_at 0) body
    | Ty_formula.Exists2 (p, s, body) ->
      Fmt.pf ppf "exists2 %a. %a" pp_signature (p, s) (pp_at 0) body
    | Ty_formula.Forall2 (p, s, body) ->
      Fmt.pf ppf "forall2 %a. %a" pp_signature (p, s) (pp_at 0) body

let pp_formula ppf f = pp_at 0 ppf f

let pp_query ppf q =
  Fmt.pf ppf "(%a). %a"
    Fmt.(list ~sep:(any ", ") pp_binding)
    q.Ty_query.head pp_formula q.Ty_query.body
