lib/typed/ty_formula.ml: Fmt Format Hashtbl List Map Printf Set String Ty_vocabulary Vardi_logic
