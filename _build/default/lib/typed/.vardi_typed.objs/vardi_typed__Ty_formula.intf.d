lib/typed/ty_formula.mli: Fmt Ty_vocabulary Vardi_logic
