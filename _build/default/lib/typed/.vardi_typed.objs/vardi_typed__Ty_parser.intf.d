lib/typed/ty_parser.mli: Fmt Ty_formula Ty_query
