lib/typed/ty_database.ml: Fmt List Printf String Ty_vocabulary Vardi_cwdb
