lib/typed/ty_vocabulary.ml: Fmt List Map Printf String Vardi_logic
