lib/typed/ty_database.mli: Fmt Ty_vocabulary Vardi_cwdb
