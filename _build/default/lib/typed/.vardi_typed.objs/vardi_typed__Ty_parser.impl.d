lib/typed/ty_parser.ml: Array Fmt List Set String Ty_formula Ty_query Vardi_logic
