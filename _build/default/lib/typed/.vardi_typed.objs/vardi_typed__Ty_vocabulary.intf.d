lib/typed/ty_vocabulary.mli: Fmt Vardi_logic
