lib/typed/ty_query.ml: Fmt List Printf Ty_database Ty_formula Ty_vocabulary Vardi_approx Vardi_certain Vardi_logic
