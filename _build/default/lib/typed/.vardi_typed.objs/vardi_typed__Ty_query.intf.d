lib/typed/ty_query.mli: Fmt Ty_database Ty_formula Ty_vocabulary Vardi_logic Vardi_relational
