lib/core/tldb_format.ml: Buffer Format List Printf String Vardi_cwdb Vardi_typed
