lib/core/tldb_format.mli: Vardi_typed
