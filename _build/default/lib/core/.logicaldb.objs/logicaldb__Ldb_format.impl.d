lib/core/ldb_format.ml: Buffer Format List Printf String Vardi_cwdb Vardi_logic
