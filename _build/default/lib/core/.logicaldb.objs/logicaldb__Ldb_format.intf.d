lib/core/ldb_format.mli: Vardi_cwdb
