lib/reductions/qbf_fo.ml: List Printf Qbf Vardi_certain Vardi_cwdb Vardi_logic
