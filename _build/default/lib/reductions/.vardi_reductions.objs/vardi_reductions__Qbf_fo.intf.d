lib/reductions/qbf_fo.mli: Qbf Vardi_certain Vardi_cwdb Vardi_logic
