lib/reductions/three_col.ml: Array Graph List Printf String Vardi_certain Vardi_cwdb Vardi_logic
