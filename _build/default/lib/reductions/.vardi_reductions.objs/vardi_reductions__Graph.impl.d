lib/reductions/graph.ml: Array Fmt Int List Option Printf Random Set Stdlib
