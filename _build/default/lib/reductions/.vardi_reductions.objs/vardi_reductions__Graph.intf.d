lib/reductions/graph.mli: Fmt
