lib/reductions/qbf.mli: Fmt
