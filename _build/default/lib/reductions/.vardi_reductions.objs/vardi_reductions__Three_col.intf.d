lib/reductions/three_col.mli: Graph Vardi_certain Vardi_cwdb Vardi_logic
