lib/reductions/qbf.ml: Array Fmt Hashtbl List Option Printf Random
