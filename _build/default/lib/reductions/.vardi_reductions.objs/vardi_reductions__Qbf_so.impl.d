lib/reductions/qbf_so.ml: List Printf Qbf Vardi_certain Vardi_cwdb Vardi_logic
