lib/reductions/qbf_so.mli: Qbf Vardi_certain Vardi_cwdb Vardi_logic
