(** Undirected graphs for the Theorem 5 reduction from 3-colorability,
    plus a direct backtracking coloring solver used as the independent
    baseline that validates the reduction. *)

type t

(** [make ~vertices ~edges] builds a graph on vertices
    [0 .. vertices-1]. Self-loops are allowed (they make the graph
    uncolorable); duplicate and mirrored edges collapse.
    @raise Invalid_argument on a vertex out of range or
    [vertices < 0]. *)
val make : vertices:int -> edges:(int * int) list -> t

val vertex_count : t -> int

(** Edges, normalized (small endpoint first) and sorted. *)
val edges : t -> (int * int) list

val has_edge : t -> int -> int -> bool
val neighbours : t -> int -> int list

(** [colorable k g] decides [k]-colorability by backtracking with the
    smallest-index-first heuristic. *)
val colorable : int -> t -> bool

(** [coloring k g] additionally returns a witness: [coloring.(v)] is
    the color of [v], in [0 .. k-1]. *)
val coloring : int -> t -> int array option

(** [is_proper_coloring g colors] checks a witness. *)
val is_proper_coloring : t -> int array -> bool

(** [random ~vertices ~edge_probability ~seed] draws an Erdős–Rényi
    graph (deterministic in [seed]).
    @raise Invalid_argument unless [0.0 <= edge_probability <= 1.0]. *)
val random : vertices:int -> edge_probability:float -> seed:int -> t

(** Classic fixed instances for tests and benches. *)

val complete : int -> t
(** [complete n] is K_n: 3-colorable iff [n <= 3]. *)

val cycle : int -> t
(** [cycle n] is C_n ([n >= 3]): 2-colorable iff [n] even, always
    3-colorable. *)

val petersen : unit -> t
(** The Petersen graph: 3-colorable, not 2-colorable. *)

val pp : t Fmt.t
