(** The Theorem 9 reduction: truth of Bₖ₊₁ formulas with 3-CNF
    matrices ≤ certain evaluation of Σₖ {e second-order} queries —
    establishing that the data complexity of Σₖ second-order queries
    climbs from Σₖᵖ (physical, Theorem 8) to Πₖ₊₁ᵖ-complete.

    Construction, for [φ ∈ Bₖ₊₁] in 3-CNF over blocks [m₁ ... mₖ₊₁]:
    - constants [1] and [cᵢⱼ]; predicates: unary [N₁] and the ternary
      [R^{pqr}_{ijl}] (declared only when used by some clause);
    - facts: [N₁(1)]; per clause
      [(¬)^{p+1}xᵢ,ⱼ₁ ∨ (¬)^{q+1}xⱼ,ⱼ₂ ∨ (¬)^{r+1}x_l,ⱼ₃] the fact
      [R^{pqr}_{ijl}(cᵢⱼ₁, cⱼⱼ₂, c_lⱼ₃)] — sign exponent 1 means
      positive;
    - uniqueness: all pairs of constants from blocks ≥ 2 are distinct
      (first-block constants stay unknown: mappings [h] simulate the
      leading ∀ block via [h(c₁ⱼ) = h(1)]);
    - query [ξ]: for each declared [R^{pqr}_{ijl}],
      [∀xyz (R^{pqr}_{ijl}(x,y,z) → ((±)N_i(x) ∨ (±)N_j(y) ∨ (±)N_l(z))];
      then [σ = (∃N₂)(∀N₃)...(Q Nₖ₊₁) ⋀ ξ] with [N₂ ... Nₖ₊₁]
      second-order quantified.

    [φ] is true iff [T ⊨f σ].

    Note this is a {e data}-complexity bound: for fixed [k] and block
    count the query depends only on which [R^{pqr}_{ijl}] are
    inhabited, not on the clauses themselves. *)

(** [constant i j] is the constant for variable [xᵢ,ⱼ] ("b<i>_<j>"). *)
val constant : int -> int -> string

(** [r_predicate (p,q,r) (i,j,l)] is the predicate name
    ["R<p><q><r>_<i>_<j>_<l>"]. *)
val r_predicate : int * int * int -> int * int * int -> string

(** [database qbf] and [query qbf].
    @raise Invalid_argument when the matrix is not in 3-CNF
    ({!Qbf.cnf3_clauses} returns [None]). *)
val database : Qbf.t -> Vardi_cwdb.Cw_database.t

val query : Qbf.t -> Vardi_logic.Query.t

(** [eval_via_certain ?algorithm qbf] decides the QBF through the
    reduction — must agree with {!Qbf.eval}. Uses bounded second-order
    evaluation internally: keep block sizes small. *)
val eval_via_certain :
  ?algorithm:Vardi_certain.Engine.algorithm -> Qbf.t -> bool
