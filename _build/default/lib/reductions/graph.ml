module Pair_set = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

type t = {
  vertices : int;
  edges : Pair_set.t;  (* normalized: (min, max) *)
}

let normalize (u, v) = if u <= v then (u, v) else (v, u)

let make ~vertices ~edges =
  if vertices < 0 then invalid_arg "Graph.make: negative vertex count";
  List.iter
    (fun (u, v) ->
      if u < 0 || v < 0 || u >= vertices || v >= vertices then
        invalid_arg
          (Printf.sprintf "Graph.make: edge (%d, %d) out of range" u v))
    edges;
  { vertices; edges = Pair_set.of_list (List.map normalize edges) }

let vertex_count g = g.vertices
let edges g = Pair_set.elements g.edges
let has_edge g u v = Pair_set.mem (normalize (u, v)) g.edges

let neighbours g v =
  Pair_set.fold
    (fun (a, b) acc ->
      if a = v && b = v then v :: acc
      else if a = v then b :: acc
      else if b = v then a :: acc
      else acc)
    g.edges []
  |> List.sort_uniq Int.compare

let coloring k g =
  if k < 0 then invalid_arg "Graph.coloring: negative color count";
  let colors = Array.make (max g.vertices 1) (-1) in
  let ok v c =
    (not (has_edge g v v))
    && List.for_all
         (fun w -> w = v || colors.(w) <> c || colors.(w) = -1)
         (neighbours g v)
  in
  let rec assign v =
    if v >= g.vertices then true
    else
      let rec try_color c =
        if c >= k then false
        else begin
          colors.(v) <- c;
          if ok v c && assign (v + 1) then true
          else begin
            colors.(v) <- -1;
            try_color (c + 1)
          end
        end
      in
      try_color 0
  in
  if assign 0 then Some (Array.sub colors 0 g.vertices) else None

let colorable k g = Option.is_some (coloring k g)

let is_proper_coloring g colors =
  Array.length colors = g.vertices
  && Pair_set.for_all (fun (u, v) -> colors.(u) <> colors.(v)) g.edges

let random ~vertices ~edge_probability ~seed =
  if edge_probability < 0.0 || edge_probability > 1.0 then
    invalid_arg "Graph.random: probability out of range";
  let state = Random.State.make [| seed; vertices |] in
  let edges = ref [] in
  for u = 0 to vertices - 1 do
    for v = u + 1 to vertices - 1 do
      if Random.State.float state 1.0 < edge_probability then
        edges := (u, v) :: !edges
    done
  done;
  make ~vertices ~edges:!edges

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  make ~vertices:n ~edges:!edges

let cycle n =
  if n < 3 then invalid_arg "Graph.cycle: need at least 3 vertices";
  make ~vertices:n ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  make ~vertices:10 ~edges:(outer @ spokes @ inner)

let pp ppf g =
  Fmt.pf ppf "graph(%d vertices; %a)" g.vertices
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "-") int int))
    (edges g)
