(** Quantified Boolean formulas in the class Bₖ₊₁ of Stockmeyer,
    as used by Theorems 7 and 9:

    [(∀x₁,₁...∀x₁,ₘ₁)(∃x₂,₁...∃x₂,ₘ₂)...(Q xₖ₊₁,₁...Q xₖ₊₁,ₘₖ₊₁) ψ]

    — blocks of variables alternating ∀/∃ starting universally, over a
    quantifier-free matrix [ψ]. Deciding truth of Bₖ₊₁ formulas is
    Πₖ₊₁ᵖ-complete [St77].

    This module also provides the direct (exponential-time) evaluator
    used as the independent baseline validating both reductions. *)

(** Variable [x_{block,index}]; both 1-based, [block ≤ number of
    blocks], [index ≤ size of that block]. *)
type var = {
  block : int;
  index : int;
}

type literal = {
  positive : bool;
  var : var;
}

type matrix =
  | Lit of literal
  | Not of matrix
  | And of matrix * matrix
  | Or of matrix * matrix

type t

(** [make ~blocks ~matrix] builds a QBF; [blocks] lists the block sizes
    [m₁ ... mₖ₊₁] (all ≥ 0, at least one block).
    @raise Invalid_argument when a matrix variable is out of range. *)
val make : blocks:int list -> matrix:matrix -> t

val blocks : t -> int list
val matrix : t -> matrix

(** Number of blocks; the paper's [k + 1]. *)
val block_count : t -> int

(** [universal_block t i] — is the [i]-th (1-based) block universal?
    Block 1 always is; quantifiers alternate. *)
val universal_block : t -> int -> bool

(** [eval t] decides truth by exhaustive expansion of the quantifier
    prefix — [2^Σmᵢ] assignments in the worst case. *)
val eval : t -> bool

(** [eval_matrix t assignment] evaluates the matrix under a total
    assignment [assignment var]. *)
val eval_matrix : matrix -> (var -> bool) -> bool

(** {1 3-CNF matrices (Theorem 9)} *)

(** A clause of exactly three literals. *)
type clause3 = literal * literal * literal

(** [of_cnf3 ~blocks clauses] builds the QBF with matrix
    [⋀ (l₁ ∨ l₂ ∨ l₃)]. An empty clause list means [true]. *)
val of_cnf3 : blocks:int list -> clause3 list -> t

(** [cnf3_clauses t] recovers the clause list when the matrix is
    syntactically a conjunction of 3-literal disjunctions. *)
val cnf3_clauses : t -> clause3 list option

(** [random_cnf3 ~blocks ~clauses ~seed] draws [clauses] random
    3-clauses over the declared variables (deterministic in [seed]).
    Variables are drawn uniformly; signs are fair coins.
    @raise Invalid_argument when the blocks declare no variable. *)
val random_cnf3 : blocks:int list -> clauses:int -> seed:int -> t

val pp : t Fmt.t
