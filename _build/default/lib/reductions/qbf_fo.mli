(** The Theorem 7 reduction: truth of Bₖ₊₁ quantified Boolean formulas
    ≤ certain evaluation of Σₖ-prefix first-order queries over CW
    logical databases — establishing that the combined complexity of
    Σₖ first-order queries climbs from Σₖᵖ-complete (physical, Theorem
    6) to Πₖ₊₁ᵖ-complete (logical).

    Construction, for [φ ∈ Bₖ₊₁] with block sizes [m₁ ... mₖ₊₁]:
    - vocabulary: unary [M], unary [N₁ ... N_{m₁}]; constants
      [0, 1, c₁ ... c_{m₁}];
    - facts: [M(1)] and [Nⱼ(cⱼ)]; uniqueness: [¬(0 = 1)];
    - query [σ]: replace [x₁,ⱼ] by [Nⱼ(1)] and [xᵢ,ⱼ (i ≥ 2)] by
      [M(yᵢ,ⱼ)], then prefix [∃y₂,* ... Q yₖ₊₁,*].

    The universal quantification over mappings [h] simulates the
    leading ∀ block ([x₁,ⱼ] is true iff [h(cⱼ) = h(1)]); the
    first-order prefix simulates the rest. [φ] is true iff [T ⊨f σ]. *)

(** [first_block_constant j] is ["c<j>"]. *)
val first_block_constant : int -> string

(** [query qbf] is the Boolean query [(). σ]. With a single block
    (k = 0) the prefix is empty and [σ = χ]. *)
val query : Qbf.t -> Vardi_logic.Query.t

(** [database qbf] is the CW logical database of the construction. *)
val database : Qbf.t -> Vardi_cwdb.Cw_database.t

(** [eval_via_certain ?algorithm qbf] decides the QBF by running the
    exact engine on the reduction — must agree with {!Qbf.eval}. *)
val eval_via_certain :
  ?algorithm:Vardi_certain.Engine.algorithm -> Qbf.t -> bool
