type var = {
  block : int;
  index : int;
}

type literal = {
  positive : bool;
  var : var;
}

type matrix =
  | Lit of literal
  | Not of matrix
  | And of matrix * matrix
  | Or of matrix * matrix

type t = {
  blocks : int list;
  matrix : matrix;
}

let rec check_matrix blocks = function
  | Lit { var = { block; index }; _ } ->
    let ok =
      block >= 1
      && block <= List.length blocks
      && index >= 1
      && index <= List.nth blocks (block - 1)
    in
    if not ok then
      invalid_arg (Printf.sprintf "Qbf: variable x_{%d,%d} out of range" block index)
  | Not m -> check_matrix blocks m
  | And (a, b) | Or (a, b) ->
    check_matrix blocks a;
    check_matrix blocks b

let make ~blocks ~matrix =
  if blocks = [] then invalid_arg "Qbf.make: at least one block required";
  List.iter
    (fun m -> if m < 0 then invalid_arg "Qbf.make: negative block size")
    blocks;
  check_matrix blocks matrix;
  { blocks; matrix }

let blocks t = t.blocks
let matrix t = t.matrix
let block_count t = List.length t.blocks
let universal_block _ i = i mod 2 = 1

let rec eval_matrix m assignment =
  match m with
  | Lit { positive; var } ->
    if positive then assignment var else not (assignment var)
  | Not m -> not (eval_matrix m assignment)
  | And (a, b) -> eval_matrix a assignment && eval_matrix b assignment
  | Or (a, b) -> eval_matrix a assignment || eval_matrix b assignment

let eval t =
  (* [values] maps (block, index) to the chosen Boolean; blocks are
     decided outer-to-inner, each expanded by binary counting over its
     variables. *)
  let values = Hashtbl.create 16 in
  let assignment var =
    match Hashtbl.find_opt values (var.block, var.index) with
    | Some b -> b
    | None -> assert false
  in
  let rec decide_block bi remaining =
    match remaining with
    | [] -> eval_matrix t.matrix assignment
    | size :: rest ->
      let universal = universal_block t bi in
      let rec choose j =
        (* Try both values for variable j, combining per quantifier. *)
        if j > size then decide_block (bi + 1) rest
        else begin
          let with_value b =
            Hashtbl.replace values (bi, j) b;
            let r = choose (j + 1) in
            Hashtbl.remove values (bi, j);
            r
          in
          if universal then with_value false && with_value true
          else with_value false || with_value true
        end
      in
      choose 1
  in
  decide_block 1 t.blocks

type clause3 = literal * literal * literal

let of_cnf3 ~blocks clauses =
  let matrix =
    match clauses with
    | [] ->
      (* An empty conjunction is true; encode as x ∨ ¬x over a dummy
         variable only when one exists, else raise. *)
      (match
         List.find_index (fun m -> m > 0) blocks
       with
      | Some bi ->
        let v = { block = bi + 1; index = 1 } in
        Or (Lit { positive = true; var = v }, Lit { positive = false; var = v })
      | None -> invalid_arg "Qbf.of_cnf3: no variables at all")
    | (l1, l2, l3) :: rest ->
      let clause (a, b, c) = Or (Lit a, Or (Lit b, Lit c)) in
      List.fold_left
        (fun acc cl -> And (acc, clause cl))
        (clause (l1, l2, l3))
        rest
  in
  make ~blocks ~matrix

let cnf3_clauses t =
  let rec clauses acc = function
    | And (a, b) -> Option.bind (clauses acc a) (fun acc -> clauses acc b)
    | Or (Lit a, Or (Lit b, Lit c)) -> Some ((a, b, c) :: acc)
    | Or _ | Lit _ | Not _ -> None
  in
  Option.map List.rev (clauses [] t.matrix)

let random_cnf3 ~blocks ~clauses ~seed =
  let all_vars =
    List.concat
      (List.mapi
         (fun bi size ->
           List.init size (fun j -> { block = bi + 1; index = j + 1 }))
         blocks)
  in
  if all_vars = [] then invalid_arg "Qbf.random_cnf3: no variables";
  let vars = Array.of_list all_vars in
  let state = Random.State.make [| seed; clauses; Array.length vars |] in
  let literal () =
    {
      positive = Random.State.bool state;
      var = vars.(Random.State.int state (Array.length vars));
    }
  in
  let clause_list =
    List.init clauses (fun _ -> (literal (), literal (), literal ()))
  in
  of_cnf3 ~blocks clause_list

let pp_literal ppf { positive; var } =
  Fmt.pf ppf "%sx_{%d,%d}" (if positive then "" else "~") var.block var.index

let rec pp_matrix ppf = function
  | Lit l -> pp_literal ppf l
  | Not m -> Fmt.pf ppf "~(%a)" pp_matrix m
  | And (a, b) -> Fmt.pf ppf "(%a /\\ %a)" pp_matrix a pp_matrix b
  | Or (a, b) -> Fmt.pf ppf "(%a \\/ %a)" pp_matrix a pp_matrix b

let pp ppf t =
  List.iteri
    (fun i size ->
      Fmt.pf ppf "%s[%d vars] "
        (if universal_block t (i + 1) then "forall" else "exists")
        size)
    t.blocks;
  pp_matrix ppf t.matrix
