(** The Theorem 5 reduction: graph 3-colorability ≤ (complement of)
    Boolean query evaluation over CW logical databases, establishing
    co-NP-hardness of data complexity.

    Given [G = (V, E)], build [LB] over vocabulary
    [{R/2, M/1, c_v (v ∈ V), 1, 2, 3}] with facts [M(1), M(2), M(3)]
    and [R(c_u, c_v)] per edge, and uniqueness axioms [1≠2, 1≠3, 2≠3].
    With the fixed Boolean query
    [φ = (∀y M(y)) → (∃x R(x, x))],
    the paper shows: [G] is 3-colorable iff [LB ⊭f φ].

    Note [φ] is fixed — only the database grows with the graph — which
    is what makes this a {e data}-complexity lower bound. *)

(** [vertex_constant v] is the constant for vertex [v] ("v<v>"). *)
val vertex_constant : int -> string

(** The fixed query [(). (forall y. M(y)) -> exists x. R(x, x)]. *)
val query : Vardi_logic.Query.t

(** [database g] is the CW logical database encoding [g]. *)
val database : Graph.t -> Vardi_cwdb.Cw_database.t

(** [colorable_via_certain ?algorithm ?order g] decides 3-colorability
    by running the exact certain-answer engine on the reduction:
    3-colorable iff {e not} certain. [order = Merge_first] looks at
    heavily-merged kernel partitions first — on colorable graphs the
    countermodel (a proper coloring merges every vertex constant into a
    color class) is then found much earlier (ablation A4). *)
val colorable_via_certain :
  ?algorithm:Vardi_certain.Engine.algorithm ->
  ?order:Vardi_certain.Engine.order ->
  Graph.t ->
  bool

(** [coloring_of_mapping g h] extracts a 3-coloring from a respecting
    mapping [h] that is a countermodel, mirroring the proof's
    construction; [None] if [h] maps some vertex constant outside
    [{1,2,3}] or the induced coloring is improper. *)
val coloring_of_mapping : Graph.t -> Vardi_cwdb.Mapping.t -> int array option
