(** The naive-tables baseline (Imielinski–Lipski style; cf. the
    paper's introduction on null values in physical databases
    [Bi81, Gr77, Za82, Fa82]).

    The simplest way to query a database with unknown values is to
    pretend it is an ordinary physical database: evaluate [Q] directly
    on [Ph₁(LB)], treating each unknown constant as a fresh, distinct
    value (a labeled null). This is the classical {e naive evaluation}
    over naive tables.

    Properties (all verified by the test suite and measured by
    experiment E11):
    - for {e positive} queries it coincides with the certain answer
      (the classical Imielinski–Lipski result; here it follows from
      Theorem 13, since the approximation leaves positive queries
      untouched and [Ph₂] agrees with [Ph₁] on them);
    - for queries with negation it is {e unsound}: evaluating
      [¬TEACHES(mystery, plato)] on [Ph₁] says "true" merely because
      the tuple is absent, even though models identifying [mystery]
      with a teacher refute it. The Section 5 algorithm exists
      precisely to fix this while staying polynomial: its [NE]/[α_P]
      machinery returns "true" only for {e provable} absence.

    This module is the paper-motivating baseline, not a recommended
    evaluator. *)

(** [answer lb q]: evaluate [q] on [Ph₁(LB)] as if it were a physical
    database. Not sound for certain answers in general. *)
val answer :
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_relational.Relation.t

(** [boolean lb q] for Boolean queries.
    @raise Invalid_argument when [q] has answer variables. *)
val boolean : Vardi_cwdb.Cw_database.t -> Vardi_logic.Query.t -> bool
