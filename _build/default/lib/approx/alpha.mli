(** The syntactic [α_P] formula of Lemma 10.

    For a [k]-ary predicate [P] (k ≥ 1), [α_P(x)] is a first-order
    formula over the vocabulary [{P, NE, =}] such that a tuple [c]
    satisfies [α_P(c)] in [Ph₂(LB)] iff [c] disagrees with [d] for
    every [d ∈ I(P)] — i.e. iff [c] is provably outside [P].

    Shape (following the paper's proof):

    [α_P(x) = ∀y (P(y) → ∃u∃v (NE(u,v) ∧ γ_{x,y}(u,v)))]

    where [γ_{x,y}(u,v)] says [u] and [v] are connected in the graph
    [G_{x,y}] with edges [(xi, yi)]. Connectivity over a graph of at
    most [2k] nodes is expressed by the classical
    repeated-squaring-with-∀-sharing formula [βₘ] (one occurrence of
    the inner formula per level, [m = ⌈log₂ 2k⌉] levels), keeping the
    total size [O(k log k)].

    All bound variables use the reserved prefix [alpha_]; free
    variables are [alpha_x1 ... alpha_xk], intended to be substituted
    with the actual argument terms (capture-avoiding substitution is
    provided by {!instantiated}). *)

(** [free_var i] is the canonical [i]-th free variable name (1-based):
    ["alpha_x<i>"]. *)
val free_var : int -> string

(** [formula ~pred ~arity] is [α_pred] over the canonical free
    variables; [arity ≥ 1].
    @raise Invalid_argument when [arity < 1]. *)
val formula : pred:string -> arity:int -> Vardi_logic.Formula.t

(** [instantiated ~pred args] is [α_pred(args)]: {!formula} with the
    canonical variables replaced by [args] (arity = [List.length args],
    which must be ≥ 1). *)
val instantiated : pred:string -> Vardi_logic.Term.t list -> Vardi_logic.Formula.t

(** [connectivity ~nodes (a, b) ~edge] is the [βₘ]-style subformula
    asserting that terms [a] and [b] are connected in the graph whose
    edge relation is given by the formula builder [edge] (applied to
    two terms). [nodes] bounds the number of graph nodes, so paths of
    length [< nodes] suffice. Exposed for direct testing. *)
val connectivity :
  nodes:int ->
  Vardi_logic.Term.t * Vardi_logic.Term.t ->
  edge:(Vardi_logic.Term.t -> Vardi_logic.Term.t -> Vardi_logic.Formula.t) ->
  Vardi_logic.Formula.t
