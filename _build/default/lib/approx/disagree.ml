module Vocabulary = Vardi_logic.Vocabulary
module Cw_database = Vardi_cwdb.Cw_database

(* Union-find over the constants of the two tuples. The graph G_{c,d}
   has an edge (ci, di) per position, so components are computed by
   unioning positionwise; two occurrences of the same constant are the
   same node. *)
let tuples lb c d =
  if List.length c <> List.length d then
    invalid_arg "Disagree.tuples: tuples of different lengths";
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some None -> x
    | Some (Some p) ->
      let root = find p in
      Hashtbl.replace parent x (Some root);
      root
  in
  let union x y =
    let rx = find x and ry = find y in
    if not (String.equal rx ry) then Hashtbl.replace parent rx (Some ry)
  in
  List.iter2 union c d;
  let nodes =
    List.sort_uniq String.compare (List.rev_append c d)
  in
  let rec any_distinct_pair = function
    | [] -> false
    | u :: rest ->
      List.exists
        (fun v ->
          Cw_database.are_distinct lb u v
          && String.equal (find u) (find v))
        rest
      || any_distinct_pair rest
  in
  any_distinct_pair nodes

let alpha_holds lb p c =
  (match Vocabulary.arity_opt (Cw_database.vocabulary lb) p with
  | None -> invalid_arg (Printf.sprintf "Disagree.alpha_holds: undeclared %s" p)
  | Some k ->
    if k <> List.length c then
      invalid_arg
        (Printf.sprintf "Disagree.alpha_holds: %s applied to %d arguments" p
           (List.length c)));
  List.for_all (fun d -> tuples lb c d) (Cw_database.facts_of lb p)

let alpha_prefix = "alpha$"
let alpha_predicate p = alpha_prefix ^ p

let virtuals lb name =
  let n = String.length alpha_prefix in
  if
    String.length name > n
    && String.equal (String.sub name 0 n) alpha_prefix
  then
    let p = String.sub name n (String.length name - n) in
    if Vocabulary.mem_predicate (Cw_database.vocabulary lb) p then
      Some (fun args -> alpha_holds lb p args)
    else None
  else None
