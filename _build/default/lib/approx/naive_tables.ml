module Query = Vardi_logic.Query
module Eval = Vardi_relational.Eval
module Ph = Vardi_cwdb.Ph
module Query_check = Vardi_cwdb.Query_check

let answer lb q =
  Query_check.validate lb q;
  Eval.answer (Ph.ph1 lb) q

let boolean lb q =
  Query_check.validate lb q;
  if not (Query.is_boolean q) then
    invalid_arg "Naive_tables.boolean: the query has answer variables";
  Eval.satisfies (Ph.ph1 lb) (Query.body q)
