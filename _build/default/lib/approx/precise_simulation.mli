(** The precise simulation of Theorem 3 (paper, Section 3.2):
    a second-order query [Q′] over [L′ = L ∪ {NE}] with
    [Q(LB) = Q′(Ph₂(LB))].

    [Q′ = (z). (∀H)(∀P′₁ ... P′ₘ)(ρ ∧ θ → ψ)] where
    - [ρ] forces [H] to be a total functional relation that never maps
      [NE]-related values together — i.e. [H] {e is} a mapping
      [h : C → C] respecting [T] (Section 3.1);
    - [θ = θ₁ ∧ ... ∧ θₘ] forces each [P′ᵢ] to be the image [h(I(Pᵢ))];
    - [ψ = ∃x₁...xₖ (H(z₁,x₁) ∧ ... ∧ H(zₖ,xₖ) ∧ φ′)] with [φ′] the
      query body with [Pᵢ] renamed to [P′ᵢ].

    One refinement over the paper's sketch: constants occurring in the
    query body are also read through [H] — each constant [a] in [φ′]
    becomes a fresh variable [w] constrained by [H(a, w)]. Theorem 1
    interprets query constants as [h(a)] in the image database, while
    [Ph₂] interprets them as themselves, so without this routing a
    query like [(x). x = a] would lose its certain answer.

    The paper stresses this is {e not} a practical implementation — the
    universal second-order quantification is the hidden source of the
    complexity jump — and our executable version indeed only runs on
    tiny databases (experiment E2). *)

(** Reserved name prefix for the quantified predicates ([sim$H],
    [sim$P]); never valid in user vocabularies parsed from source, so
    no capture can occur. *)
val prefix : string

(** [query' vocabulary q] constructs [Q′].
    @raise Invalid_argument if the query already mentions a
    [sim$]-prefixed atom or a [sim_]-prefixed variable. *)
val query' : Vardi_logic.Vocabulary.t -> Vardi_logic.Query.t -> Vardi_logic.Query.t

(** [answer lb q] evaluates [Q′(Ph₂(LB))] with the bounded second-order
    evaluator. Exponential in [|C|²]; use only on tiny databases.
    @raise Invalid_argument when the needed relation enumeration
    exceeds {!Vardi_relational.Relation.max_enumeration}. *)
val answer :
  Vardi_cwdb.Cw_database.t -> Vardi_logic.Query.t -> Vardi_relational.Relation.t
