(** Disagreement between tuples of constants (paper, Section 5 and
    Lemma 10).

    Tuples [c] and [d] {e disagree} w.r.t. [T] when
    [Unique(T) ∧ c = d] is unsatisfiable — equivalently (paper, proof
    of Lemma 10), when some [ci] and [dj] are connected in the graph
    [G_{c,d} = (V, E)] with [V = {c1..ck, d1..dk}] and
    [E = {(ci, di)}], and [¬(ci = dj) ∈ T].

    If [c] disagrees with every fact tuple of [P], then [c] is provably
    not in [P] in every model — the semantics the [α_P] predicate gives
    to negated atoms. *)

(** [tuples lb c d] decides disagreement.
    @raise Invalid_argument when the tuples' lengths differ. *)
val tuples : Vardi_cwdb.Cw_database.t -> string list -> string list -> bool

(** [alpha_holds lb p c] decides [c ∈ α_P]: [c] disagrees with [d] for
    every atomic fact [P(d)] of [lb]. With no facts about [p] this is
    vacuously true.
    @raise Invalid_argument if [p]'s declared arity differs from
    [List.length c] or [p] is undeclared. *)
val alpha_holds : Vardi_cwdb.Cw_database.t -> string -> string list -> bool

(** Name of the virtual predicate wrapping {!alpha_holds} for predicate
    [p]: ["alpha$" ^ p]. The translation {!Translate} emits these names
    in [`Semantic] mode. *)
val alpha_predicate : string -> string

(** [virtuals lb] resolves every ["alpha$P"] name for a predicate [P]
    declared in [lb]; all other names (including [NE], which [Ph₂]
    stores as a real relation) are left to the database. *)
val virtuals : Vardi_cwdb.Cw_database.t -> Vardi_relational.Eval.virtuals
