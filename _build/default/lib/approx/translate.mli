(** The query translation [Q ↦ Q̂] of Section 5.

    Steps, following the paper:
    + push all negations down to atoms (NNF, {!Vardi_logic.Nnf});
    + replace every inequality [¬(xi = xj)] by [NE(xi, xj)];
    + replace every negated atom [¬P(t)] by [α_P(t)] — either the
      {e syntactic} Lemma-10 formula ({!Alpha}), or a {e semantic}
      virtual predicate ["alpha$P"] evaluated by {!Disagree} (the
      polynomial-time check used in Theorem 14's complexity analysis).

    Positive subformulas are untouched, so a positive query translates
    to itself (the syntactic heart of Theorem 13). *)

type mode =
  | Semantic   (** negated atoms become virtual ["alpha$P"] atoms *)
  | Syntactic  (** negated atoms become Lemma-10 subformulas *)

exception Unsupported of string
(** Raised in [Semantic] mode when a negated atom's predicate is bound
    by a second-order quantifier: a static virtual predicate cannot see
    the quantified relation, so use [Syntactic] mode for such queries. *)

(** [formula mode f] translates a formula (NNF is applied first).
    Zero-ary negated atoms [¬P()] are kept as-is: on [Ph₂] they already
    mean "P() is not an axiom", which is exactly provable absence. *)
val formula : mode -> Vardi_logic.Formula.t -> Vardi_logic.Formula.t

(** [query mode q] is [Q̂]: head unchanged, body translated. *)
val query : mode -> Vardi_logic.Query.t -> Vardi_logic.Query.t
