module Formula = Vardi_logic.Formula
module Query = Vardi_logic.Query
module Nnf = Vardi_logic.Nnf

type mode =
  | Semantic
  | Syntactic

exception Unsupported of string

module String_set = Set.Make (String)

let rec walk mode so_bound f =
  match f with
  | Formula.True | Formula.False | Formula.Eq _ | Formula.Atom _ -> f
  | Formula.Not (Formula.Eq (s, t)) ->
    Formula.Atom (Vardi_cwdb.Ph.ne_predicate, [ s; t ])
  | Formula.Not (Formula.Atom (_, [])) -> f
  | Formula.Not (Formula.Atom (p, ts)) -> (
    match mode with
    | Syntactic -> Alpha.instantiated ~pred:p ts
    | Semantic ->
      if String_set.mem p so_bound then
        raise
          (Unsupported
             (Printf.sprintf
                "negated second-order atom %s needs the syntactic translation" p))
      else Formula.Atom (Disagree.alpha_predicate p, ts))
  | Formula.Not _ ->
    (* NNF guarantees negations sit on atoms. *)
    assert false
  | Formula.And (f, g) ->
    Formula.And (walk mode so_bound f, walk mode so_bound g)
  | Formula.Or (f, g) -> Formula.Or (walk mode so_bound f, walk mode so_bound g)
  | Formula.Implies _ | Formula.Iff _ ->
    (* NNF eliminates these. *)
    assert false
  | Formula.Exists (x, f) -> Formula.Exists (x, walk mode so_bound f)
  | Formula.Forall (x, f) -> Formula.Forall (x, walk mode so_bound f)
  | Formula.Exists2 (p, k, f) ->
    Formula.Exists2 (p, k, walk mode (String_set.add p so_bound) f)
  | Formula.Forall2 (p, k, f) ->
    Formula.Forall2 (p, k, walk mode (String_set.add p so_bound) f)

let formula mode f = walk mode String_set.empty (Nnf.transform f)

let query mode q = Query.make (Query.head q) (formula mode (Query.body q))
