(** Reiter's proof-theoretic query evaluation [Re86], reconstructed.

    Reiter evaluates a query over an extended relational theory by
    structural recursion on the (negation-normal) formula, computing at
    each subformula the set of {e provable} instantiations:
    - an atom's instances are the stored facts;
    - a negated atom's instances are the tuples provably outside the
      predicate (they disagree, via the uniqueness axioms, with every
      stored fact — the same notion as {!Disagree});
    - [∧] joins, [∨] unions, [∃] projects, and [∀x] intersects over all
      constants.

    Like the Section 5 algorithm this is sound but not complete
    (disjunctions and existentials of unprovable-but-certain facts are
    lost). The paper's Remark after Theorem 13 states that for
    first-order queries both algorithms return {e identical} answers —
    a claim the test suite verifies by running this independent
    implementation against [Q̂(Ph₂(LB))]. Unlike the paper's
    reconstruction of Reiter's approach, this one does not extend to
    second-order queries (the paper makes the same observation).

    Implementation note: this is a third, fully independent evaluation
    path — no [Ph₂], no virtual predicates, no relational algebra; just
    sets of tuples over the constant universe. *)

exception Unsupported of string
(** Raised on second-order quantifiers. *)

(** [answer lb q] is Reiter's answer to [q] over [lb].
    @raise Invalid_argument when the query mentions symbols outside the
    vocabulary (as {!Vardi_cwdb.Query_check}).
    @raise Unsupported on second-order queries. *)
val answer :
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_relational.Relation.t

(** [boolean lb q] for Boolean queries.
    @raise Invalid_argument when [q] has answer variables. *)
val boolean : Vardi_cwdb.Cw_database.t -> Vardi_logic.Query.t -> bool
