lib/approx/naive_tables.mli: Vardi_cwdb Vardi_logic Vardi_relational
