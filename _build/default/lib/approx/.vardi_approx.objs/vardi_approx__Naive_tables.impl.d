lib/approx/naive_tables.ml: Vardi_cwdb Vardi_logic Vardi_relational
