lib/approx/reiter.ml: Disagree List String Vardi_cwdb Vardi_logic Vardi_relational
