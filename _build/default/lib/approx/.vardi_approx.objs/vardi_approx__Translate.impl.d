lib/approx/translate.ml: Alpha Disagree Printf Set String Vardi_cwdb Vardi_logic
