lib/approx/reiter.mli: Vardi_cwdb Vardi_logic Vardi_relational
