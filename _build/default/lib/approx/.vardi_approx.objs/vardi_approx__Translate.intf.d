lib/approx/translate.mli: Vardi_logic
