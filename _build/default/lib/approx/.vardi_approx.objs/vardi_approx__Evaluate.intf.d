lib/approx/evaluate.mli: Translate Vardi_cwdb Vardi_logic Vardi_relational
