lib/approx/disagree.ml: Hashtbl List Printf String Vardi_cwdb Vardi_logic
