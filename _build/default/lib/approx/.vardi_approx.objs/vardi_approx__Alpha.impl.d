lib/approx/alpha.ml: List Printf String Vardi_cwdb Vardi_logic
