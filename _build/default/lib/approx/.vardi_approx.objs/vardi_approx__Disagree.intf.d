lib/approx/disagree.mli: Vardi_cwdb Vardi_relational
