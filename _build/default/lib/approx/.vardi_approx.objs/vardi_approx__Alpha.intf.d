lib/approx/alpha.mli: Vardi_logic
