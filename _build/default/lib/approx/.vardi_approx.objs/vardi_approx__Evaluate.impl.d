lib/approx/evaluate.ml: Disagree Translate Vardi_cwdb Vardi_logic Vardi_relational
