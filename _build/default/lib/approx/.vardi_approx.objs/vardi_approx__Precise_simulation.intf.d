lib/approx/precise_simulation.mli: Vardi_cwdb Vardi_logic Vardi_relational
