lib/approx/precise_simulation.ml: List Printf String Vardi_cwdb Vardi_logic Vardi_relational
