(** The approximation algorithm of Section 5:
    [A(Q, LB) = Q̂(Ph₂(LB))].

    Guarantees proved in the paper and verified by the test suite:
    - {b Soundness} (Theorem 11): [A(Q, LB) ⊆ Q(LB)];
    - {b Completeness for fully specified databases} (Theorem 12);
    - {b Completeness for positive queries} (Theorem 13);
    - {b Physical-database complexity} (Theorem 14): with the
      polynomial-time [α_P] oracle, evaluating [A(Q, LB)] costs the
      same as evaluating a first-order query over a physical database.

    Two backends execute [Q̂] on [Ph₂(LB)]: direct Tarskian evaluation,
    or compilation to relational algebra — the paper's "implementation
    on the top of a standard database management system".

    Pick [Semantic] mode for the algebra backends. [Syntactic] mode is
    compatible with them but impractical beyond toy databases: each
    Lemma-10 subformula carries ~10 nested quantifiers and the
    active-domain compiler materializes [D^k] per quantifier depth.
    This blow-up is exactly why Theorem 14's analysis treats [α_P] as
    a virtually-atomic formula — which is what [Semantic] mode does. *)

type backend =
  | Direct   (** Tarskian evaluation ({!Vardi_relational.Eval}) *)
  | Algebra  (** compile to relational algebra and run it
                 ({!Vardi_relational.Compile}); first-order queries only *)
  | Algebra_optimized
      (** as [Algebra], after the {!Vardi_relational.Optimizer}
          rewriting pass *)

(** How answers compare to the exact [Q(LB)] for a given pair, decided
    syntactically up front. *)
type completeness =
  | Complete_fully_specified  (** Theorem 12 applies *)
  | Complete_positive         (** Theorem 13 applies *)
  | Sound_only                (** only [A(Q,LB) ⊆ Q(LB)] is promised *)

val completeness :
  Vardi_cwdb.Cw_database.t -> Vardi_logic.Query.t -> completeness

(** [answer ?mode ?backend lb q] is [A(Q, LB)]. Defaults:
    [mode = Translate.Semantic], [backend = Direct].

    @raise Invalid_argument when the query mentions symbols outside the
    vocabulary of [lb] (see {!Vardi_cwdb.Query_check}).
    @raise Translate.Unsupported per {!Translate}.
    @raise Vardi_relational.Compile.Unsupported when [backend = Algebra]
    and the query is second-order. *)
val answer :
  ?mode:Translate.mode ->
  ?backend:backend ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  Vardi_relational.Relation.t

(** [member ?mode lb q c] decides [c ∈ A(Q, LB)] directly. *)
val member :
  ?mode:Translate.mode ->
  Vardi_cwdb.Cw_database.t ->
  Vardi_logic.Query.t ->
  string list ->
  bool

(** [boolean ?mode lb q] decides a Boolean query.
    @raise Invalid_argument when [q] has answer variables. *)
val boolean :
  ?mode:Translate.mode -> Vardi_cwdb.Cw_database.t -> Vardi_logic.Query.t -> bool

(** The virtual-predicate hook needed to run a [Semantic]-mode [Q̂]
    against [Ph₂(lb)] with {!Vardi_relational.Eval} directly. *)
val virtuals : Vardi_cwdb.Cw_database.t -> Vardi_relational.Eval.virtuals
