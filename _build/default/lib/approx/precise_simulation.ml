module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module Vocabulary = Vardi_logic.Vocabulary
module Eval = Vardi_relational.Eval

let prefix = "sim$"
let h_name = prefix ^ "H"
let primed p = prefix ^ p

let var_terms names = List.map Term.var names

(* ρ = ρ1 ∧ ρ2 ∧ ρ3: H is total, functional, and respects NE. *)
let rho =
  let h a b = Formula.Atom (h_name, [ a; b ]) in
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let u = Term.var "u" and v = Term.var "v" in
  let rho1 = Formula.Forall ("x", Formula.Exists ("y", h x y)) in
  let rho2 =
    Formula.forall_many [ "x"; "y"; "z" ]
      (Formula.Implies (Formula.And (h x y, h x z), Formula.Eq (y, z)))
  in
  let rho3 =
    Formula.forall_many [ "x"; "y"; "u"; "v" ]
      (Formula.Implies
         ( Formula.conj
             [
               Formula.Atom (Vardi_cwdb.Ph.ne_predicate, [ x; y ]);
               h x u;
               h y v;
             ],
           Formula.neq u v ))
  in
  Formula.conj [ rho1; rho2; rho3 ]

(* θᵢ forces P′ᵢ = h(I(Pᵢ)). *)
let theta_for p arity =
  let h a b = Formula.Atom (h_name, [ a; b ]) in
  let ys = List.init arity (Printf.sprintf "y%d") in
  let us = List.init arity (Printf.sprintf "u%d") in
  let yts = var_terms ys and uts = var_terms us in
  let h_links = List.map2 h yts uts in
  let forward =
    Formula.forall_many (ys @ us)
      (Formula.Implies
         ( Formula.conj (Formula.Atom (p, yts) :: h_links),
           Formula.Atom (primed p, uts) ))
  in
  let backward =
    Formula.forall_many us
      (Formula.exists_many ys
         (Formula.Implies
            ( Formula.Atom (primed p, uts),
              Formula.conj (Formula.Atom (p, yts) :: h_links) )))
  in
  Formula.And (forward, backward)

(* Replace constant symbols by variables per the association list.
   Purely syntactic: the replacement variables use the reserved
   [sim_] namespace, which [query'] verifies is unused. *)
let rec replace_constants assoc f =
  let term = function
    | Term.Const a as t -> (
      match List.assoc_opt a assoc with
      | Some w -> Term.Var w
      | None -> t)
    | Term.Var _ as t -> t
  in
  match f with
  | Formula.True | Formula.False -> f
  | Formula.Eq (s, t) -> Formula.Eq (term s, term t)
  | Formula.Atom (p, ts) -> Formula.Atom (p, List.map term ts)
  | Formula.Not g -> Formula.Not (replace_constants assoc g)
  | Formula.And (g, h) ->
    Formula.And (replace_constants assoc g, replace_constants assoc h)
  | Formula.Or (g, h) ->
    Formula.Or (replace_constants assoc g, replace_constants assoc h)
  | Formula.Implies (g, h) ->
    Formula.Implies (replace_constants assoc g, replace_constants assoc h)
  | Formula.Iff (g, h) ->
    Formula.Iff (replace_constants assoc g, replace_constants assoc h)
  | Formula.Exists (x, g) -> Formula.Exists (x, replace_constants assoc g)
  | Formula.Forall (x, g) -> Formula.Forall (x, replace_constants assoc g)
  | Formula.Exists2 (p, k, g) ->
    Formula.Exists2 (p, k, replace_constants assoc g)
  | Formula.Forall2 (p, k, g) ->
    Formula.Forall2 (p, k, replace_constants assoc g)

let reserved_variable x =
  String.length x >= 4 && String.equal (String.sub x 0 4) "sim_"

let query' vocabulary q =
  let body = Query.body q in
  List.iter
    (fun (p, _) ->
      if String.length p >= String.length prefix
         && String.equal (String.sub p 0 (String.length prefix)) prefix
      then
        invalid_arg
          (Printf.sprintf "Precise_simulation: query already mentions %s" p))
    (Formula.free_preds body);
  List.iter
    (fun x ->
      if reserved_variable x then
        invalid_arg
          (Printf.sprintf
             "Precise_simulation: variable %s uses the reserved sim_ namespace"
             x))
    (Formula.all_vars body @ Query.head q);
  let predicates = Vocabulary.predicates vocabulary in
  let theta = Formula.conj (List.map (fun (p, k) -> theta_for p k) predicates) in
  let phi' =
    List.fold_left
      (fun f (p, _) -> Formula.rename_atom ~from:p ~into:(primed p) f)
      body predicates
  in
  let head = Query.head q in
  let zs = List.mapi (fun i _ -> Printf.sprintf "%sz%d" "sim_" (i + 1)) head in
  let links =
    List.map2
      (fun z x -> Formula.Atom (h_name, [ Term.var z; Term.var x ]))
      zs head
  in
  (* Constants occurring in the body must be read through H as well:
     Theorem 1 interprets a query constant [a] as [h(a)] in the image
     database, while [Ph₂]'s interpretation is the identity. Replace
     each constant by a fresh variable [w] linked by [H(a, w)]. (The
     paper's construction leaves this implicit.) *)
  let body_constants = Formula.constants phi' in
  let const_vars =
    List.mapi (fun i a -> (a, Printf.sprintf "sim_w%d" (i + 1))) body_constants
  in
  let phi'' = replace_constants const_vars phi' in
  let const_links =
    List.map
      (fun (a, w) -> Formula.Atom (h_name, [ Term.const a; Term.var w ]))
      const_vars
  in
  let psi =
    Formula.exists_many head
      (Formula.exists_many (List.map snd const_vars)
         (Formula.conj (links @ const_links @ [ phi'' ])))
  in
  let matrix = Formula.Implies (Formula.And (rho, theta), psi) in
  let quantified =
    Formula.Forall2
      ( h_name,
        2,
        List.fold_right
          (fun (p, k) f -> Formula.Forall2 (primed p, k, f))
          predicates matrix )
  in
  Query.make zs quantified

let answer lb q =
  let q' = query' (Vardi_cwdb.Cw_database.vocabulary lb) q in
  Eval.answer (Vardi_cwdb.Ph.ph2 lb) q'
