module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module Nnf = Vardi_logic.Nnf
module Relation = Vardi_relational.Relation
module Cw_database = Vardi_cwdb.Cw_database
module Query_check = Vardi_cwdb.Query_check

exception Unsupported of string

(* Each subformula is evaluated to the relation over an ordered
   variable list [vars] of the assignments that make it provable.
   Column i holds the value of [List.nth vars i]. *)

let value_of vars row term =
  match term with
  | Term.Const c -> c
  | Term.Var x ->
    let rec find names cells =
      match names, cells with
      | n :: _, v :: _ when String.equal n x -> v
      | _ :: ns, _ :: vs -> find ns vs
      | _ -> assert false
    in
    find vars row

let rec provable lb vars f =
  let constants = Cw_database.constants lb in
  let full () = Relation.full ~domain:constants (List.length vars) in
  let filter check = Relation.filter check (full ()) in
  match f with
  | Formula.True -> full ()
  | Formula.False -> Relation.empty (List.length vars)
  | Formula.Eq (s, t) ->
    filter (fun row ->
        String.equal (value_of vars row s) (value_of vars row t))
  | Formula.Not (Formula.Eq (s, t)) ->
    (* Provably unequal: a uniqueness axiom separates the values. *)
    filter (fun row ->
        Cw_database.are_distinct lb (value_of vars row s) (value_of vars row t))
  | Formula.Atom (p, ts) ->
    let facts = Cw_database.facts_of lb p in
    filter (fun row ->
        let args = List.map (value_of vars row) ts in
        List.exists (fun fact -> List.equal String.equal fact args) facts)
  | Formula.Not (Formula.Atom (p, ts)) ->
    filter (fun row ->
        Disagree.alpha_holds lb p (List.map (value_of vars row) ts))
  | Formula.Not _ | Formula.Implies _ | Formula.Iff _ ->
    (* NNF removes these before we get here. *)
    assert false
  | Formula.And (g, h) ->
    Relation.inter (provable lb vars g) (provable lb vars h)
  | Formula.Or (g, h) ->
    Relation.union (provable lb vars g) (provable lb vars h)
  | Formula.Exists (x, body) ->
    let x, body = unshadow vars x body in
    let inner = provable lb (vars @ [ x ]) body in
    Relation.fold
      (fun row acc ->
        let keep = List.filteri (fun i _ -> i < List.length vars) row in
        Relation.add keep acc)
      inner
      (Relation.empty (List.length vars))
  | Formula.Forall (x, body) ->
    let x, body = unshadow vars x body in
    let inner = provable lb (vars @ [ x ]) body in
    filter (fun row ->
        List.for_all (fun d -> Relation.mem (row @ [ d ]) inner) constants)
  | Formula.Exists2 _ | Formula.Forall2 _ ->
    raise (Unsupported "Reiter's algorithm covers first-order queries only")

and unshadow vars x body =
  if List.mem x vars then begin
    let x' = Formula.fresh_var ~base:x [ body ] in
    let x'' =
      if List.mem x' vars then Formula.fresh_var ~base:(x' ^ "_r") [ body ]
      else x'
    in
    ( x'',
      Formula.substitute
        (fun y -> if String.equal y x then Some (Term.Var x'') else None)
        body )
  end
  else (x, body)

let answer lb q =
  Query_check.validate lb q;
  provable lb (Query.head q) (Nnf.transform (Query.body q))

let boolean lb q =
  if not (Query.is_boolean q) then
    invalid_arg "Reiter.boolean: the query has answer variables";
  not (Relation.is_empty (answer lb q))
