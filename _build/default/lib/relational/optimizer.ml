open Algebra

(* Columns inspected by a selection, or [] for row-independent ones. *)
let selection_columns = function
  | Cols_eq (i, j) | Cols_neq (i, j) -> [ i; j ]
  | Col_eq_const (i, _) | Col_neq_const (i, _) -> [ i ]
  | Consts_eq _ | Consts_neq _ -> []

let shift_selection offset = function
  | Cols_eq (i, j) -> Cols_eq (i - offset, j - offset)
  | Cols_neq (i, j) -> Cols_neq (i - offset, j - offset)
  | Col_eq_const (i, c) -> Col_eq_const (i - offset, c)
  | Col_neq_const (i, c) -> Col_neq_const (i - offset, c)
  | (Consts_eq _ | Consts_neq _) as s -> s

(* Remap a selection's columns through a projection list: output column
   [i] of [Project (cols, e)] is input column [List.nth cols i]. *)
let remap_selection cols = function
  | Cols_eq (i, j) -> Cols_eq (List.nth cols i, List.nth cols j)
  | Cols_neq (i, j) -> Cols_neq (List.nth cols i, List.nth cols j)
  | Col_eq_const (i, c) -> Col_eq_const (List.nth cols i, c)
  | Col_neq_const (i, c) -> Col_neq_const (List.nth cols i, c)
  | (Consts_eq _ | Consts_neq _) as s -> s

let is_identity_projection cols k =
  List.length cols = k && List.mapi (fun i c -> i = c) cols |> List.for_all Fun.id

(* Universal expressions denote the full relation D^k. Every expression
   evaluates to a subset of D^k (database validation keeps all stored
   and virtual tuples inside the domain), which justifies absorbing
   universals in set operations and cancelling double complements. *)
let rec is_universal = function
  | Domain -> true
  | Product (a, b) -> is_universal a && is_universal b
  | Base _ | Virtual _ | Empty _ | Select _ | Project _ | Union _ | Inter _
  | Diff _ ->
    false

(* One top-level rewrite step; [None] when no rule applies. Children
   are already in normal form when this is called. *)
let step db expr =
  let arity e = Algebra.arity db e in
  match expr with
  (* --- trivial selections --- *)
  | Select (Cols_eq (i, j), e) when i = j -> Some e
  | Select (Cols_neq (i, j), e) when i = j -> Some (Empty (arity e))
  | Select (_, (Empty _ as e)) -> Some e
  (* --- selection pushdown --- *)
  | Select (sel, Project (cols, e)) ->
    Some (Project (cols, Select (remap_selection cols sel, e)))
  | Select (sel, Union (a, b)) -> Some (Union (Select (sel, a), Select (sel, b)))
  | Select (sel, Inter (a, b)) -> Some (Inter (Select (sel, a), b))
  | Select (sel, Diff (a, b)) -> Some (Diff (Select (sel, a), b))
  | Select (sel, Product (a, b)) ->
    let ka = arity a in
    let cols = selection_columns sel in
    if List.for_all (fun c -> c < ka) cols then
      Some (Product (Select (sel, a), b))
    else if List.for_all (fun c -> c >= ka) cols then
      Some (Product (a, Select (shift_selection ka sel, b)))
    else None
  (* --- projections --- *)
  | Project (cols, e) when is_identity_projection cols (arity e) -> Some e
  | Project (cols1, Project (cols2, e)) ->
    let cols2 = Array.of_list cols2 in
    Some (Project (List.map (fun i -> cols2.(i)) cols1, e))
  | Project (cols, Empty _) -> Some (Empty (List.length cols))
  (* --- constant folding on set operations --- *)
  | Union (Empty _, e) | Union (e, Empty _) -> Some e
  | Inter ((Empty _ as e), _) | Inter (_, (Empty _ as e)) -> Some e
  | Diff ((Empty _ as e), _) -> Some e
  | Diff (e, Empty _) -> Some e
  | Product ((Empty _ as a), b) -> Some (Empty (arity a + arity b))
  | Product (a, (Empty _ as b)) -> Some (Empty (arity a + arity b))
  (* --- idempotence (syntactic) --- *)
  | Union (a, b) when a = b -> Some a
  | Inter (a, b) when a = b -> Some a
  | Diff (a, b) when a = b -> Some (Empty (arity a))
  (* --- universal absorption and double complement --- *)
  | Inter (u, e) when is_universal u -> Some e
  | Inter (e, u) when is_universal u -> Some e
  | Union (u, _) when is_universal u -> Some u
  | Union (_, u) when is_universal u -> Some u
  | Diff (e, u) when is_universal u -> Some (Empty (arity e))
  | Diff (u1, Diff (u2, e)) when is_universal u1 && is_universal u2 -> Some e
  | Base _ | Virtual _ | Domain | Empty _ | Select _ | Project _ | Product _
  | Union _ | Inter _ | Diff _ ->
    None

let optimize db expr =
  (* Validate once up front so rewrites can assume well-formedness. *)
  let _ = Algebra.arity db expr in
  let rec normalize expr =
    let expr' =
      match expr with
      | Base _ | Virtual _ | Domain | Empty _ -> expr
      | Select (sel, e) -> Select (sel, normalize e)
      | Project (cols, e) -> Project (cols, normalize e)
      | Product (a, b) -> Product (normalize a, normalize b)
      | Union (a, b) -> Union (normalize a, normalize b)
      | Inter (a, b) -> Inter (normalize a, normalize b)
      | Diff (a, b) -> Diff (normalize a, normalize b)
    in
    match step db expr' with
    | Some rewritten -> normalize rewritten
    | None -> expr'
  in
  normalize expr
