(** Tarskian query evaluation over physical databases (paper,
    Section 2.1): [Q(PB) = { d ∈ D^|x| : I satisfies φ(d) }].

    First-order quantifiers range over the database domain.
    Second-order quantifiers range over all relations of the given
    arity over the domain — exponential, guarded by
    {!Relation.max_enumeration}; they exist to execute Theorem 3's
    precise simulation and the Theorem 9 reduction on small inputs.

    Atoms are resolved in this order: second-order environment (bound
    predicate variables), then [virtuals] (computed predicates, used by
    the approximation algorithm for [α_P] and the virtual [NE]), then
    the database relations. *)

exception Eval_error of string

(** Assigns a computed truth value to some predicate names; see
    {!Approx} for its two uses in the paper. *)
type virtuals = string -> (Tuple.element list -> bool) option

val no_virtuals : virtuals

(** [satisfies ?virtuals db sentence] decides [db ⊨ sentence].
    @raise Eval_error on a free variable, an unknown predicate, or an
    arity mismatch. *)
val satisfies :
  ?virtuals:virtuals -> Database.t -> Vardi_logic.Formula.t -> bool

(** [holds ?virtuals db env formula] decides satisfaction under an
    explicit variable assignment. *)
val holds :
  ?virtuals:virtuals ->
  Database.t ->
  (string * Tuple.element) list ->
  Vardi_logic.Formula.t ->
  bool

(** [answer ?virtuals db q] is [Q(PB)]: all head-arity tuples over the
    domain whose assignment satisfies the body. *)
val answer : ?virtuals:virtuals -> Database.t -> Vardi_logic.Query.t -> Relation.t

(** [member ?virtuals db q tuple] decides [tuple ∈ Q(PB)] without
    materializing the whole answer (the decision problem whose
    complexity Section 4 studies).
    @raise Eval_error on arity mismatch with the query head. *)
val member :
  ?virtuals:virtuals -> Database.t -> Vardi_logic.Query.t -> Tuple.t -> bool
