lib/relational/tuple.mli: Fmt
