lib/relational/database.mli: Fmt Relation Tuple Vardi_logic
