lib/relational/algebra.ml: Array Database Eval Fmt Format List Relation String
