lib/relational/relation.ml: Array Float Fmt Fun Int List Printf Seq Set Tuple
