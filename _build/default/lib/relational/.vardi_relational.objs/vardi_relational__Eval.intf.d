lib/relational/eval.mli: Database Relation Tuple Vardi_logic
