lib/relational/eval.ml: Bool Database List Map Printf Relation Seq String Tuple Vardi_logic
