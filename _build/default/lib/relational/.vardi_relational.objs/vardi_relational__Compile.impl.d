lib/relational/compile.ml: Algebra Database Fun List Printf Relation String Vardi_logic
