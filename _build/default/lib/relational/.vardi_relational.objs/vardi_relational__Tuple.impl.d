lib/relational/tuple.ml: Fmt List String
