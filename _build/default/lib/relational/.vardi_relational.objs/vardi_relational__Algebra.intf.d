lib/relational/algebra.mli: Database Eval Fmt Relation
