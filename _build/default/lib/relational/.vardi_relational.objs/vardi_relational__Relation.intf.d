lib/relational/relation.mli: Fmt Seq Tuple
