lib/relational/optimizer.ml: Algebra Array Fun List
