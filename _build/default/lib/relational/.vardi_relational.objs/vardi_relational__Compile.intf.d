lib/relational/compile.mli: Algebra Database Eval Relation Vardi_logic
