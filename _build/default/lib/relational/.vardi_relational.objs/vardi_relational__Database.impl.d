lib/relational/database.ml: Fmt List Map Printf Relation Set String Tuple Vardi_logic
