(** A rule-based optimizer for relational-algebra plans.

    The {!Compile} translation is deliberately naive (pad every
    subformula to the full active domain); this pass recovers much of
    the cost through classical, semantics-preserving rewrites:

    - constant folding: operations on [Empty] and on universal
      (full-domain) operands — including double-complement
      cancellation, the [∀ = ¬∃¬] compilation pattern — plus trivial
      selections
      ([$i = $i] / [$i != $i]), idempotent set operations;
    - projection fusion and elimination of identity projections;
    - selection pushdown through [Project], [Union], [Inter], [Diff]
      and into the relevant side of a [Product].

    Soundness invariant (checked by the test suite on random plans):
    [run db (optimize db e) = run db e]. *)

(** [optimize db e] rewrites to a fixpoint. The database supplies the
    schema (base-relation arities) needed to type column positions.
    @raise Eval.Eval_error if [e] is ill-formed w.r.t. [db] (same
    validation as {!Algebra.arity}). *)
val optimize : Database.t -> Algebra.t -> Algebra.t
