(** Tuples of domain elements.

    Domain elements are represented as strings throughout: for a
    [Ph₁]/[Ph₂] database they are the constant symbols of the
    vocabulary (paper, Section 3.1). *)

type element = string
type t = element list

val compare : t -> t -> int
val equal : t -> t -> bool
val arity : t -> int
val pp : t Fmt.t
val to_string : t -> string
