type element = string
type t = element list

let compare = List.compare String.compare
let equal a b = compare a b = 0
let arity = List.length

let pp ppf t = Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") string) t
let to_string = Fmt.to_to_string pp
