(** Physical databases (paper, Section 2.1).

    A physical database is a pair [(L, I)]: a relational vocabulary and
    a finite interpretation — a nonempty finite domain [D], an element
    of [D] for each constant symbol, and a relation over [D] of the
    right arity for each predicate symbol. Equality is always
    interpreted as actual equality and is not stored. *)

type t

(** [make ~vocabulary ~domain ~constants ~relations] builds and
    validates a database:
    - [domain] must be nonempty (duplicates are removed);
    - [constants] must assign a domain element to {e every} constant of
      the vocabulary;
    - [relations] must assign to every predicate of the vocabulary a
      relation of the declared arity whose tuples draw from [domain]
      (missing predicates default to the empty relation).

    @raise Invalid_argument when validation fails. *)
val make :
  vocabulary:Vardi_logic.Vocabulary.t ->
  domain:Tuple.element list ->
  constants:(string * Tuple.element) list ->
  relations:(string * Relation.t) list ->
  t

val vocabulary : t -> Vardi_logic.Vocabulary.t

(** Domain elements, sorted. *)
val domain : t -> Tuple.element list

val domain_size : t -> int

(** [constant db c] is the domain element interpreting [c].
    @raise Not_found when [c] is not a constant of the vocabulary. *)
val constant : t -> string -> Tuple.element

(** [relation db p] is the relation interpreting predicate [p].
    @raise Not_found when [p] is not declared. *)
val relation : t -> string -> Relation.t

val relation_opt : t -> string -> Relation.t option

(** [with_relation db p r] overrides (or adds) the interpretation of
    [p], extending the vocabulary if needed. Tuples must draw from the
    domain.
    @raise Invalid_argument on violations. *)
val with_relation : t -> string -> Relation.t -> t

(** [map_elements h db] is the image database [h(db)] of Section 3.1:
    domain [h(D)], constants [h ∘ I], relations [h(I(P))]. [h] need not
    be injective. *)
val map_elements : (Tuple.element -> Tuple.element) -> t -> t

(** Total number of tuples across all relations. *)
val size : t -> int

(** Equality of interpretations (same vocabulary, domain, constant map
    and relations). *)
val equal : t -> t -> bool

(** [isomorphic a b] tests isomorphism by searching for a bijection
    between the (small) domains that maps constants to corresponding
    constants and relations onto relations. Exponential; intended for
    tests on small databases. *)
val isomorphic : t -> t -> bool

val pp : t Fmt.t
