module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module String_map = Map.Make (String)

exception Eval_error of string

type virtuals = string -> (Tuple.element list -> bool) option

let no_virtuals _ = None

type context = {
  db : Database.t;
  virtuals : virtuals;
  env : Tuple.element String_map.t;      (* individual variables *)
  so_env : Relation.t String_map.t;      (* second-order variables *)
}

let element ctx = function
  | Term.Var x -> (
    match String_map.find_opt x ctx.env with
    | Some e -> e
    | None -> raise (Eval_error (Printf.sprintf "unbound variable %s" x)))
  | Term.Const c -> (
    try Database.constant ctx.db c
    with Not_found ->
      raise (Eval_error (Printf.sprintf "unknown constant %s" c)))

let atom_holds ctx p args =
  match String_map.find_opt p ctx.so_env with
  | Some r ->
    if Relation.arity r <> List.length args then
      raise
        (Eval_error
           (Printf.sprintf "predicate variable %s used with arity %d" p
              (List.length args)));
    Relation.mem args r
  | None -> (
    match ctx.virtuals p with
    | Some check -> check args
    | None -> (
      match Database.relation_opt ctx.db p with
      | Some r ->
        if Relation.arity r <> List.length args then
          raise
            (Eval_error
               (Printf.sprintf "predicate %s used with arity %d, declared %d" p
                  (List.length args) (Relation.arity r)));
        Relation.mem args r
      | None -> raise (Eval_error (Printf.sprintf "unknown predicate %s" p))))

let rec eval ctx formula =
  match formula with
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Eq (s, t) -> String.equal (element ctx s) (element ctx t)
  | Formula.Atom (p, ts) -> atom_holds ctx p (List.map (element ctx) ts)
  | Formula.Not f -> not (eval ctx f)
  | Formula.And (f, g) -> eval ctx f && eval ctx g
  | Formula.Or (f, g) -> eval ctx f || eval ctx g
  | Formula.Implies (f, g) -> (not (eval ctx f)) || eval ctx g
  | Formula.Iff (f, g) -> Bool.equal (eval ctx f) (eval ctx g)
  | Formula.Exists (x, f) ->
    List.exists
      (fun e -> eval { ctx with env = String_map.add x e ctx.env } f)
      (Database.domain ctx.db)
  | Formula.Forall (x, f) ->
    List.for_all
      (fun e -> eval { ctx with env = String_map.add x e ctx.env } f)
      (Database.domain ctx.db)
  | Formula.Exists2 (p, k, f) ->
    Seq.exists
      (fun r -> eval { ctx with so_env = String_map.add p r ctx.so_env } f)
      (all_relations ctx k)
  | Formula.Forall2 (p, k, f) ->
    Seq.for_all
      (fun r -> eval { ctx with so_env = String_map.add p r ctx.so_env } f)
      (all_relations ctx k)

and all_relations ctx k =
  let universe = Relation.full ~domain:(Database.domain ctx.db) k in
  Relation.subsets universe

let make_context ?(virtuals = no_virtuals) db env =
  {
    db;
    virtuals;
    env =
      List.fold_left
        (fun acc (x, e) -> String_map.add x e acc)
        String_map.empty env;
    so_env = String_map.empty;
  }

let holds ?virtuals db env formula = eval (make_context ?virtuals db env) formula

let satisfies ?virtuals db sentence =
  match Formula.free_vars sentence with
  | [] -> holds ?virtuals db [] sentence
  | x :: _ ->
    raise (Eval_error (Printf.sprintf "sentence has free variable %s" x))

let member ?virtuals db q tuple =
  let head = Query.head q in
  if List.length tuple <> List.length head then
    raise (Eval_error "Eval.member: tuple arity differs from the query head");
  holds ?virtuals db (List.combine head tuple) (Query.body q)

let answer ?virtuals db q =
  let head = Query.head q in
  let k = List.length head in
  let domain = Database.domain db in
  let rec assignments = function
    | 0 -> [ [] ]
    | n ->
      let rest = assignments (n - 1) in
      List.concat_map (fun e -> List.map (fun t -> e :: t) rest) domain
  in
  List.fold_left
    (fun acc tuple ->
      if member ?virtuals db q tuple then Relation.add tuple acc else acc)
    (Relation.empty k) (assignments k)
