(** Finite relations: sets of equal-arity tuples.

    The empty relation carries an explicit arity so that schema
    information survives emptiness. *)

type t

(** [empty k] is the empty [k]-ary relation.
    @raise Invalid_argument when [k < 0]. *)
val empty : int -> t

(** [of_tuples k tuples] builds a relation.
    @raise Invalid_argument if some tuple's arity differs from [k]. *)
val of_tuples : int -> Tuple.t list -> t

val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool
val mem : Tuple.t -> t -> bool

(** [add tuple r].
    @raise Invalid_argument on an arity mismatch. *)
val add : Tuple.t -> t -> t

(** Tuples in ascending lexicographic order. *)
val tuples : t -> Tuple.t list

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool
val filter : (Tuple.t -> bool) -> t -> t

(** [map f r] applies [f] to every tuple. [f] must preserve arity.
    @raise Invalid_argument if it does not. *)
val map : (Tuple.t -> Tuple.t) -> t -> t

(** Set operations. All raise [Invalid_argument] on arity mismatch. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** [product a b] is the Cartesian product, of arity
    [arity a + arity b]. *)
val product : t -> t -> t

(** [full ~domain k] is the complete relation [domain^k]. Guarded by
    {!max_enumeration}: raises [Invalid_argument] when
    [|domain|^k > max_enumeration]. *)
val full : domain:Tuple.element list -> int -> t

(** Cap on materialized enumerations ([full] and {!subsets}). *)
val max_enumeration : int

(** [subsets r] enumerates all subsets of [r] (used by bounded
    second-order quantification, Theorems 3, 8 and 9). The result is a
    sequence to avoid materializing all [2^|r|] subsets.
    @raise Invalid_argument when [cardinal r] exceeds [log2
    max_enumeration]. *)
val subsets : t -> t Seq.t

val pp : t Fmt.t
