module Vocabulary = Vardi_logic.Vocabulary
module String_map = Map.Make (String)
module String_set = Set.Make (String)

type t = {
  vocabulary : Vocabulary.t;
  domain : String_set.t;
  constants : Tuple.element String_map.t;
  relations : Relation.t String_map.t;
}

let check_tuples_in_domain domain name r =
  Relation.iter
    (fun tuple ->
      List.iter
        (fun e ->
          if not (String_set.mem e domain) then
            invalid_arg
              (Printf.sprintf
                 "Database: relation %s mentions %s, outside the domain" name e))
        tuple)
    r

let make ~vocabulary ~domain ~constants ~relations =
  let domain_set = String_set.of_list domain in
  if String_set.is_empty domain_set then
    invalid_arg "Database.make: the domain must be nonempty";
  let constant_map =
    List.fold_left
      (fun acc (c, e) ->
        if not (Vocabulary.mem_constant vocabulary c) then
          invalid_arg
            (Printf.sprintf "Database.make: %s is not a constant of L" c);
        if not (String_set.mem e domain_set) then
          invalid_arg
            (Printf.sprintf "Database.make: constant %s maps outside the domain"
               c);
        String_map.add c e acc)
      String_map.empty constants
  in
  List.iter
    (fun c ->
      if not (String_map.mem c constant_map) then
        invalid_arg
          (Printf.sprintf "Database.make: constant %s has no interpretation" c))
    (Vocabulary.constants vocabulary);
  let relation_map =
    List.fold_left
      (fun acc (p, r) ->
        match Vocabulary.arity_opt vocabulary p with
        | None ->
          invalid_arg
            (Printf.sprintf "Database.make: %s is not a predicate of L" p)
        | Some k ->
          if Relation.arity r <> k then
            invalid_arg
              (Printf.sprintf
                 "Database.make: relation %s has arity %d, declared %d" p
                 (Relation.arity r) k);
          check_tuples_in_domain domain_set p r;
          String_map.add p r acc)
      String_map.empty relations
  in
  let relation_map =
    List.fold_left
      (fun acc (p, k) ->
        if String_map.mem p acc then acc
        else String_map.add p (Relation.empty k) acc)
      relation_map
      (Vocabulary.predicates vocabulary)
  in
  {
    vocabulary;
    domain = domain_set;
    constants = constant_map;
    relations = relation_map;
  }

let vocabulary db = db.vocabulary
let domain db = String_set.elements db.domain
let domain_size db = String_set.cardinal db.domain

let constant db c =
  match String_map.find_opt c db.constants with
  | Some e -> e
  | None -> raise Not_found

let relation db p =
  match String_map.find_opt p db.relations with
  | Some r -> r
  | None -> raise Not_found

let relation_opt db p = String_map.find_opt p db.relations

let with_relation db p r =
  check_tuples_in_domain db.domain p r;
  let vocabulary =
    if Vocabulary.mem_predicate db.vocabulary p then begin
      if Vocabulary.arity db.vocabulary p <> Relation.arity r then
        invalid_arg
          (Printf.sprintf "Database.with_relation: arity clash for %s" p);
      db.vocabulary
    end
    else Vocabulary.add_predicate db.vocabulary p (Relation.arity r)
  in
  { db with vocabulary; relations = String_map.add p r db.relations }

let map_elements h db =
  {
    db with
    domain = String_set.map h db.domain;
    constants = String_map.map h db.constants;
    relations = String_map.map (Relation.map (List.map h)) db.relations;
  }

let size db =
  String_map.fold (fun _ r acc -> acc + Relation.cardinal r) db.relations 0

let equal a b =
  Vocabulary.equal a.vocabulary b.vocabulary
  && String_set.equal a.domain b.domain
  && String_map.equal String.equal a.constants b.constants
  && String_map.equal Relation.equal a.relations b.relations

(* Isomorphism search: backtrack over injective extensions of the
   constant-forced partial bijection. Only suitable for small domains. *)
let isomorphic a b =
  Vocabulary.equal a.vocabulary b.vocabulary
  && String_set.cardinal a.domain = String_set.cardinal b.domain
  && String_map.for_all
       (fun p ra ->
         Relation.cardinal ra = Relation.cardinal (relation b p))
       a.relations
  &&
  let da = String_set.elements a.domain in
  let db_elems = String_set.elements b.domain in
  (* The bijection is forced on constant interpretations. *)
  let forced =
    String_map.fold
      (fun c ea acc ->
        match acc with
        | None -> None
        | Some m -> (
          let eb = String_map.find c b.constants in
          match String_map.find_opt ea m with
          | Some eb' when String.equal eb eb' -> Some m
          | Some _ -> None
          | None ->
            if List.exists (fun (_, v) -> String.equal v eb) (String_map.bindings m)
            then None
            else Some (String_map.add ea eb m)))
      a.constants (Some String_map.empty)
  in
  match forced with
  | None -> false
  | Some forced ->
    let check_complete m =
      String_map.for_all
        (fun p ra ->
          let rb = relation b p in
          Relation.for_all
            (fun tuple ->
              Relation.mem (List.map (fun e -> String_map.find e m) tuple) rb)
            ra)
        a.relations
    in
    let rec extend m used = function
      | [] -> check_complete m
      | e :: rest ->
        if String_map.mem e m then extend m used rest
        else
          List.exists
            (fun e' ->
              (not (String_set.mem e' used))
              && extend (String_map.add e e' m) (String_set.add e' used) rest)
            db_elems
    in
    let used =
      String_map.fold (fun _ v acc -> String_set.add v acc) forced
        String_set.empty
    in
    extend forced used da

let pp ppf db =
  let pp_constant ppf (c, e) = Fmt.pf ppf "%s -> %s" c e in
  let pp_relation ppf (p, r) = Fmt.pf ppf "%s = %a" p Relation.pp r in
  Fmt.pf ppf "@[<v>domain: {%a}@,constants: %a@,%a@]"
    Fmt.(list ~sep:(any ", ") string)
    (domain db)
    Fmt.(list ~sep:(any "; ") pp_constant)
    (String_map.bindings db.constants)
    Fmt.(list ~sep:cut pp_relation)
    (String_map.bindings db.relations)
