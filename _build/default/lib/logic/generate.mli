(** Seeded random generation of formulas and queries — a fuzzing aid
    for engine implementors (the test suite's property-based tests use
    an equivalent QCheck generator; this one has no test-framework
    dependency and is part of the public API).

    All generation is deterministic in the [Random.State.t]. Generated
    formulas are well-formed over the given vocabulary: predicates are
    applied at their declared arity, constants are drawn from the
    vocabulary, and quantified variables are drawn from a fixed pool. *)

type profile = {
  depth : int;  (** maximum connective nesting (default 3) *)
  allow_negation : bool;  (** include [¬], [→], [↔] (default true) *)
  allow_quantifiers : bool;  (** include [∃]/[∀] (default true) *)
}

val default_profile : profile

(** [formula ?profile ~state vocabulary ~vars] generates a formula
    whose free variables are drawn from [vars] (possibly fewer, never
    others).
    @raise Invalid_argument when the vocabulary has no predicate and no
    constant and [vars] is empty (no atoms can be built). *)
val formula :
  ?profile:profile ->
  state:Random.State.t ->
  Vocabulary.t ->
  vars:string list ->
  Formula.t

(** [sentence ?profile ~state vocabulary] generates a closed formula
    (free variables are quantified away). *)
val sentence :
  ?profile:profile -> state:Random.State.t -> Vocabulary.t -> Formula.t

(** [query ?profile ~state vocabulary ~arity] generates a query with
    [arity] head variables. *)
val query :
  ?profile:profile ->
  state:Random.State.t ->
  Vocabulary.t ->
  arity:int ->
  Query.t
