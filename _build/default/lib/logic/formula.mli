(** First- and second-order formulas over a relational vocabulary
    (paper, Section 2).

    Formulas may use:
    - equality atoms [t1 = t2],
    - predicate atoms [P(t1, ..., tk)] where [P] is either a predicate
      of the vocabulary or a second-order (predicate) variable bound by
      {!constructor:Exists2}/{!constructor:Forall2},
    - the connectives [¬ ∧ ∨ → ↔],
    - first-order quantifiers over individual variables, and
    - second-order quantifiers over predicate variables with an
      explicit arity (used by Theorem 3's precise simulation and by the
      Theorem 9 reduction). *)

type t =
  | True
  | False
  | Eq of Term.t * Term.t
  | Atom of string * Term.t list
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists of string * t
  | Forall of string * t
  | Exists2 of string * int * t  (** [(∃P/k) φ] — predicate variable *)
  | Forall2 of string * int * t  (** [(∀P/k) φ] *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Smart constructors} *)

val eq : Term.t -> Term.t -> t
val neq : Term.t -> Term.t -> t
val atom : string -> Term.t list -> t

(** [and_ a b] simplifies on [True]/[False] arguments; likewise the
    other connective constructors below. *)
val and_ : t -> t -> t

val or_ : t -> t -> t
val not_ : t -> t
val implies : t -> t -> t
val iff : t -> t -> t
val exists : string -> t -> t
val forall : string -> t -> t

(** [conj fs] is the conjunction of [fs] ([True] when empty). *)
val conj : t list -> t

(** [disj fs] is the disjunction of [fs] ([False] when empty). *)
val disj : t list -> t

(** [exists_many xs f] is [∃x1 ... ∃xn. f]. *)
val exists_many : string list -> t -> t

val forall_many : string list -> t -> t

(** {1 Structure} *)

(** Free individual variables, in first-occurrence order. *)
val free_vars : t -> string list

(** All individual variables (free and bound). *)
val all_vars : t -> string list

(** Free predicate variables with arities: atom names that are not
    bound by a second-order quantifier. Whether they denote vocabulary
    predicates is up to the caller. *)
val free_preds : t -> (string * int) list

(** Constant symbols occurring in the formula. *)
val constants : t -> string list

(** Number of connectives, quantifiers and atoms — the formula length
    measure used for the Lemma 10 O(k log k) bound. *)
val size : t -> int

(** [is_positive f] is [true] when every atom of [f] is governed by an
    even number of negations, where [Implies]/[Iff] are expanded in the
    usual way (paper, Section 5: positive queries). [Eq] and predicate
    atoms both count as atoms; [True]/[False] never block positivity. *)
val is_positive : t -> bool

(** [is_first_order f] is [true] when [f] has no second-order
    quantifier. *)
val is_first_order : t -> bool

(** [substitute map f] capture-avoiding substitution of individual
    variables: each free variable [x] with [map x = Some t] becomes
    [t]. Bound variables are renamed as needed. *)
val substitute : (string -> Term.t option) -> t -> t

(** [instantiate pairs f] substitutes constants for free variables:
    [instantiate [("x", "a")] f] replaces free [x] by constant [a]. *)
val instantiate : (string * string) list -> t -> t

(** [rename_atom ~from ~into f] renames every atom named [from]
    (including second-order binders for [from]) into [into]. Used by
    Theorem 3's [P ↦ P′] substitution. *)
val rename_atom : from:string -> into:string -> t -> t

(** A variable name not occurring (free or bound) in any of the given
    formulas, derived from [base]. *)
val fresh_var : base:string -> t list -> string

(** {1 Quantifier-prefix classification (paper, Theorems 6–9)} *)

(** [fo_sigma_rank f] classifies a prenex-like first-order formula: the
    number of quantifier-block alternations of its leading prefix,
    starting existentially. [Some k] means [f] is syntactically in
    Σₖ (e.g. [∃x ∀y. ψ] with quantifier-free [ψ] has rank 2). [None]
    when [f] has quantifiers below the propositional structure. *)
val fo_sigma_rank : t -> int option

(** Same classification for the second-order prefix (Σᵏ classes of
    Theorems 8 and 9). *)
val so_sigma_rank : t -> int option
