open Formula

let rec positive f =
  match f with
  | True | False | Eq _ | Atom _ -> f
  | Not g -> negative g
  | And (f, g) -> And (positive f, positive g)
  | Or (f, g) -> Or (positive f, positive g)
  | Implies (f, g) -> Or (negative f, positive g)
  | Iff (f, g) ->
    (* φ↔ψ  ≡  (φ∧ψ) ∨ (¬φ∧¬ψ): duplicates subformulas, as any
       NNF of ↔ must. *)
    Or (And (positive f, positive g), And (negative f, negative g))
  | Exists (x, f) -> Exists (x, positive f)
  | Forall (x, f) -> Forall (x, positive f)
  | Exists2 (p, k, f) -> Exists2 (p, k, positive f)
  | Forall2 (p, k, f) -> Forall2 (p, k, positive f)

and negative f =
  match f with
  | True -> False
  | False -> True
  | Eq _ | Atom _ -> Not f
  | Not g -> positive g
  | And (f, g) -> Or (negative f, negative g)
  | Or (f, g) -> And (negative f, negative g)
  | Implies (f, g) -> And (positive f, negative g)
  | Iff (f, g) ->
    Or (And (positive f, negative g), And (negative f, positive g))
  | Exists (x, f) -> Forall (x, negative f)
  | Forall (x, f) -> Exists (x, negative f)
  | Exists2 (p, k, f) -> Forall2 (p, k, negative f)
  | Forall2 (p, k, f) -> Exists2 (p, k, negative f)

let transform = positive

let rec is_nnf = function
  | True | False | Eq _ | Atom _ -> true
  | Not (Eq _) | Not (Atom _) -> true
  | Not _ -> false
  | And (f, g) | Or (f, g) -> is_nnf f && is_nnf g
  | Implies _ | Iff _ -> false
  | Exists (_, f) | Forall (_, f) -> is_nnf f
  | Exists2 (_, _, f) | Forall2 (_, _, f) -> is_nnf f
