open Formula

let pp_term = Term.pp

(* Precedence levels, loosest first:
   0 iff and quantifiers, 1 implies, 2 or, 3 and, 4 not, 5 atoms.
   A subformula is parenthesized when its level is strictly looser than
   the context requires. Quantifiers sit at level 0 because their scope
   extends maximally to the right: they may appear bare only where a
   whole formula is expected (top level, quantifier bodies), and are
   parenthesized in every operand position. [Implies] is printed
   right-associatively; [Iff] operands are both forced to level 1, so
   nested [Iff]s round-trip through explicit parentheses. *)
let level = function
  | Iff _ | Exists _ | Forall _ | Exists2 _ | Forall2 _ -> 0
  | Implies _ -> 1
  | Or _ -> 2
  | And _ -> 3
  | Not (Eq _) -> 5 (* printed as [t != t], an atom *)
  | Not _ -> 4
  | True | False | Eq _ | Atom _ -> 5

let rec collect_exists acc = function
  | Exists (x, f) -> collect_exists (x :: acc) f
  | f -> (List.rev acc, f)

let rec collect_forall acc = function
  | Forall (x, f) -> collect_forall (x :: acc) f
  | f -> (List.rev acc, f)

let rec collect_exists2 acc = function
  | Exists2 (p, k, f) -> collect_exists2 ((p, k) :: acc) f
  | f -> (List.rev acc, f)

let rec collect_forall2 acc = function
  | Forall2 (p, k, f) -> collect_forall2 ((p, k) :: acc) f
  | f -> (List.rev acc, f)

let rec pp_at min_level ppf f =
  let lvl = level f in
  if lvl < min_level then Fmt.pf ppf "(%a)" (pp_at 0) f
  else
    match f with
    | True -> Fmt.string ppf "true"
    | False -> Fmt.string ppf "false"
    | Eq (s, t) -> Fmt.pf ppf "%a = %a" Term.pp s Term.pp t
    | Not (Eq (s, t)) -> Fmt.pf ppf "%a != %a" Term.pp s Term.pp t
    | Atom (p, []) -> Fmt.pf ppf "%s()" p
    | Atom (p, ts) ->
      Fmt.pf ppf "%s(%a)" p Fmt.(list ~sep:(any ", ") Term.pp) ts
    | Not f -> Fmt.pf ppf "~%a" (pp_at 4) f
    | And (f, g) -> Fmt.pf ppf "%a /\\ %a" (pp_at 3) f (pp_at 4) g
    | Or (f, g) -> Fmt.pf ppf "%a \\/ %a" (pp_at 2) f (pp_at 3) g
    | Implies (f, g) -> Fmt.pf ppf "%a -> %a" (pp_at 2) f (pp_at 1) g
    | Iff (f, g) -> Fmt.pf ppf "%a <-> %a" (pp_at 1) f (pp_at 1) g
    | Exists _ ->
      let xs, body = collect_exists [] f in
      Fmt.pf ppf "exists %a. %a"
        Fmt.(list ~sep:(any ", ") string)
        xs (pp_at 0) body
    | Forall _ ->
      let xs, body = collect_forall [] f in
      Fmt.pf ppf "forall %a. %a"
        Fmt.(list ~sep:(any ", ") string)
        xs (pp_at 0) body
    | Exists2 _ ->
      let ps, body = collect_exists2 [] f in
      Fmt.pf ppf "exists2 %a. %a" pp_pbinders ps (pp_at 0) body
    | Forall2 _ ->
      let ps, body = collect_forall2 [] f in
      Fmt.pf ppf "forall2 %a. %a" pp_pbinders ps (pp_at 0) body

and pp_pbinders ppf ps =
  Fmt.(list ~sep:(any ", ") (fun ppf (p, k) -> Fmt.pf ppf "%s/%d" p k)) ppf ps

let pp_formula ppf f = pp_at 0 ppf f

let pp_query ppf q =
  Fmt.pf ppf "(%a). %a"
    Fmt.(list ~sep:(any ", ") string)
    (Query.head q) pp_formula (Query.body q)

let formula_to_string = Fmt.to_to_string pp_formula
let query_to_string = Fmt.to_to_string pp_query
