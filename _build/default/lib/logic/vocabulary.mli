(** Relational vocabularies (paper, Section 2.1).

    A relational vocabulary [L] consists of finitely many constant
    symbols and finitely many predicate symbols (each with an arity),
    plus the always-present equality symbol. There are no function
    symbols. Equality is handled specially by the evaluators and is
    {e not} listed among the predicates here. *)

type t

(** [make ~constants ~predicates] builds a vocabulary.

    @raise Invalid_argument if a predicate is declared twice with
    different arities, if an arity is negative, or if a predicate is
    named ["="] (equality is built in). Duplicate constants are
    tolerated and deduplicated. *)
val make : constants:string list -> predicates:(string * int) list -> t

val empty : t

(** Constant symbols, sorted. This is the set called [C] in the paper. *)
val constants : t -> string list

(** Predicate symbols with arities, sorted by name. *)
val predicates : t -> (string * int) list

val mem_constant : t -> string -> bool
val mem_predicate : t -> string -> bool

(** [arity v p] is the arity of predicate [p].
    @raise Not_found if [p] is not declared. *)
val arity : t -> string -> int

val arity_opt : t -> string -> int option

(** [add_constant v c] is [v] extended with constant [c] (no-op when
    already present). *)
val add_constant : t -> string -> t

(** [add_predicate v p k] extends [v] with the [k]-ary predicate [p].
    @raise Invalid_argument on an arity clash with an existing
    declaration. *)
val add_predicate : t -> string -> int -> t

(** [union a b] merges two vocabularies.
    @raise Invalid_argument on an arity clash. *)
val union : t -> t -> t

val equal : t -> t -> bool
val pp : t Fmt.t
