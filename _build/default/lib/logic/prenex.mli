(** Prenex normal form for first-order formulas.

    The Σₖ query classes of Theorems 6 and 7 are defined on
    quantifier-prefix formulas; {!Formula.fo_sigma_rank} classifies
    only formulas already in that shape. This module converts any
    first-order formula into an equivalent prenex one (NNF first, then
    quantifier extraction with capture-avoiding renaming), after which
    every formula has a defined rank. *)

exception Unsupported of string
(** Raised on second-order quantifiers. *)

(** [transform f] is a logically equivalent prenex formula: a string of
    quantifiers over a quantifier-free matrix in NNF. Bound variables
    may be renamed.
    @raise Unsupported when [f] contains a second-order quantifier. *)
val transform : Formula.t -> Formula.t

(** [is_prenex f]: quantifiers appear only as the leading prefix. *)
val is_prenex : Formula.t -> bool

(** [rank f] is [Formula.fo_sigma_rank (transform f)] — defined for
    every first-order formula. Note prenexing is not canonical, so this
    is an upper bound on the formula's true alternation class.
    @raise Unsupported as {!transform}. *)
val rank : Formula.t -> int
