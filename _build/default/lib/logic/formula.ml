type t =
  | True
  | False
  | Eq of Term.t * Term.t
  | Atom of string * Term.t list
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists of string * t
  | Forall of string * t
  | Exists2 of string * int * t
  | Forall2 of string * int * t

(* Structural comparison is adequate: the AST contains only strings,
   ints and lists, never functions or cyclic values. *)
let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let eq s t = Eq (s, t)
let neq s t = Not (Eq (s, t))
let atom p ts = Atom (p, ts)

let and_ a b =
  match a, b with
  | True, f | f, True -> f
  | False, _ | _, False -> False
  | _ -> And (a, b)

let or_ a b =
  match a, b with
  | False, f | f, False -> f
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let implies a b =
  match a, b with
  | True, f -> f
  | False, _ -> True
  | _, True -> True
  | _ -> Implies (a, b)

let iff a b =
  match a, b with
  | True, f | f, True -> f
  | False, f | f, False -> not_ f
  | _ -> Iff (a, b)

let exists x f = Exists (x, f)
let forall x f = Forall (x, f)

let conj fs = List.fold_left and_ True fs
let disj fs = List.fold_left or_ False fs

let exists_many xs f = List.fold_right exists xs f
let forall_many xs f = List.fold_right forall xs f

let dedup_keep_order names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let free_vars f =
  let module S = Set.Make (String) in
  let rec go bound acc = function
    | True | False -> acc
    | Eq (s, t) -> add bound (add bound acc s) t
    | Atom (_, ts) -> List.fold_left (add bound) acc ts
    | Not f -> go bound acc f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) ->
      go bound (go bound acc f) g
    | Exists (x, f) | Forall (x, f) -> go (S.add x bound) acc f
    | Exists2 (_, _, f) | Forall2 (_, _, f) -> go bound acc f
  and add bound acc t =
    match t with
    | Term.Var x when not (S.mem x bound) -> x :: acc
    | Term.Var _ | Term.Const _ -> acc
  in
  dedup_keep_order (List.rev (go S.empty [] f))

let all_vars f =
  let rec go acc = function
    | True | False -> acc
    | Eq (s, t) -> add (add acc s) t
    | Atom (_, ts) -> List.fold_left add acc ts
    | Not f -> go acc f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) -> go (go acc f) g
    | Exists (x, f) | Forall (x, f) -> go (x :: acc) f
    | Exists2 (_, _, f) | Forall2 (_, _, f) -> go acc f
  and add acc = function
    | Term.Var x -> x :: acc
    | Term.Const _ -> acc
  in
  dedup_keep_order (List.rev (go [] f))

let free_preds f =
  let module S = Set.Make (String) in
  let rec go bound acc = function
    | True | False | Eq _ -> acc
    | Atom (p, ts) ->
      if S.mem p bound then acc else (p, List.length ts) :: acc
    | Not f -> go bound acc f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) ->
      go bound (go bound acc f) g
    | Exists (_, f) | Forall (_, f) -> go bound acc f
    | Exists2 (p, _, f) | Forall2 (p, _, f) -> go (S.add p bound) acc f
  in
  let pairs = List.rev (go S.empty [] f) in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (p, _) ->
      if Hashtbl.mem seen p then false
      else begin
        Hashtbl.add seen p ();
        true
      end)
    pairs

let constants f =
  let rec go acc = function
    | True | False -> acc
    | Eq (s, t) -> add (add acc s) t
    | Atom (_, ts) -> List.fold_left add acc ts
    | Not f -> go acc f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) -> go (go acc f) g
    | Exists (_, f) | Forall (_, f) -> go acc f
    | Exists2 (_, _, f) | Forall2 (_, _, f) -> go acc f
  and add acc = function
    | Term.Const c -> c :: acc
    | Term.Var _ -> acc
  in
  dedup_keep_order (List.rev (go [] f))

let rec size = function
  | True | False | Eq _ | Atom _ -> 1
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) -> 1 + size f + size g
  | Exists (_, f) | Forall (_, f) -> 1 + size f
  | Exists2 (_, _, f) | Forall2 (_, _, f) -> 1 + size f

let is_positive f =
  (* [pos] is the parity context: [true] when under an even number of
     negations. [Iff] counts as a conjunction of two implications, so
     both sides must be positive in both parities to be safe. *)
  let rec go pos = function
    | True | False -> true
    | Eq _ | Atom _ -> pos
    | Not f -> go (not pos) f
    | And (f, g) | Or (f, g) -> go pos f && go pos g
    | Implies (f, g) -> go (not pos) f && go pos g
    | Iff (f, g) -> go pos f && go (not pos) f && go pos g && go (not pos) g
    | Exists (_, f) | Forall (_, f) -> go pos f
    | Exists2 (_, _, f) | Forall2 (_, _, f) -> go pos f
  in
  go true f

let rec is_first_order = function
  | True | False | Eq _ | Atom _ -> true
  | Not f -> is_first_order f
  | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) ->
    is_first_order f && is_first_order g
  | Exists (_, f) | Forall (_, f) -> is_first_order f
  | Exists2 _ | Forall2 _ -> false

let fresh_var ~base fs =
  let used =
    List.fold_left (fun acc f -> List.rev_append (all_vars f) acc) [] fs
  in
  let module S = Set.Make (String) in
  let used = S.of_list used in
  if not (S.mem base used) then base
  else
    let rec try_index i =
      let candidate = Printf.sprintf "%s%d" base i in
      if S.mem candidate used then try_index (i + 1) else candidate
    in
    try_index 0

let substitute map f =
  (* Capture-avoiding: when descending under a binder [x], drop [x]
     from the substitution; if [x] occurs in the range of the remaining
     substitution, rename the binder first. *)
  let range_vars map dom =
    List.concat_map
      (fun x -> match map x with Some t -> Term.vars_of [ t ] | None -> [])
      dom
  in
  let rec go dom map f =
    match f with
    | True | False -> f
    | Eq (s, t) -> Eq (Term.substitute map s, Term.substitute map t)
    | Atom (p, ts) -> Atom (p, List.map (Term.substitute map) ts)
    | Not f -> Not (go dom map f)
    | And (f, g) -> And (go dom map f, go dom map g)
    | Or (f, g) -> Or (go dom map f, go dom map g)
    | Implies (f, g) -> Implies (go dom map f, go dom map g)
    | Iff (f, g) -> Iff (go dom map f, go dom map g)
    | Exists (x, body) ->
      let x', body' = under_binder dom map x body in
      Exists (x', body')
    | Forall (x, body) ->
      let x', body' = under_binder dom map x body in
      Forall (x', body')
    | Exists2 (p, k, body) -> Exists2 (p, k, go dom map body)
    | Forall2 (p, k, body) -> Forall2 (p, k, go dom map body)
  and under_binder dom map x body =
    let dom' = List.filter (fun y -> not (String.equal y x)) dom in
    let map' y = if String.equal y x then None else map y in
    if List.mem x (range_vars map dom') then begin
      let x' = fresh_var ~base:x [ body ] in
      let rename y =
        if String.equal y x then Some (Term.Var x') else map' y
      in
      (x', go (x' :: dom') rename body)
    end
    else (x, go dom' map' body)
  in
  let dom = free_vars f in
  go dom map f

let instantiate pairs f =
  let map x =
    match List.assoc_opt x pairs with
    | Some c -> Some (Term.Const c)
    | None -> None
  in
  substitute map f

let rec rename_atom ~from ~into f =
  let re = rename_atom ~from ~into in
  match f with
  | True | False | Eq _ -> f
  | Atom (p, ts) when String.equal p from -> Atom (into, ts)
  | Atom _ -> f
  | Not f -> Not (re f)
  | And (f, g) -> And (re f, re g)
  | Or (f, g) -> Or (re f, re g)
  | Implies (f, g) -> Implies (re f, re g)
  | Iff (f, g) -> Iff (re f, re g)
  | Exists (x, f) -> Exists (x, re f)
  | Forall (x, f) -> Forall (x, re f)
  | Exists2 (p, k, f) ->
    let p' = if String.equal p from then into else p in
    Exists2 (p', k, re f)
  | Forall2 (p, k, f) ->
    let p' = if String.equal p from then into else p in
    Forall2 (p', k, re f)

let rec has_quantifier = function
  | True | False | Eq _ | Atom _ -> false
  | Not f -> has_quantifier f
  | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) ->
    has_quantifier f || has_quantifier g
  | Exists _ | Forall _ | Exists2 _ | Forall2 _ -> true

(* Count quantifier-block alternations of the leading prefix. The
   polarity convention follows Theorem 6: Σₖ starts existentially and
   has k blocks, so ∃*∀* is Σ₂. A leading ∀ prefix counts an empty
   initial ∃ block, so ∀* is Σ₂ as well. [strip] peels one quantifier
   of the kind being ranked; [matrix_ok] decides whether the remaining
   matrix is admissible (quantifier-free for the FO rank, free of
   second-order quantifiers for the SO rank). *)
let prefix_rank ~strip ~matrix_ok f =
  let rec blocks first current count f =
    match strip f with
    | Some (`E, body) ->
      let first = match first with `None -> `E | k -> k in
      if current = `E then blocks first `E count body
      else blocks first `E (count + 1) body
    | Some (`A, body) ->
      let first = match first with `None -> `A | k -> k in
      if current = `A then blocks first `A count body
      else blocks first `A (count + 1) body
    | None -> if matrix_ok f then Some (first, count) else None
  in
  match blocks `None `None 0 f with
  | None -> None
  | Some (`None, _) -> Some 0
  | Some (`E, k) -> Some k
  (* A leading ∀ block counts an empty initial ∃ block: ∀* sits in
     Σ₂ but not Σ₁. *)
  | Some (`A, k) -> Some (k + 1)

let fo_sigma_rank f =
  let strip = function
    | Exists (_, body) -> Some (`E, body)
    | Forall (_, body) -> Some (`A, body)
    | _ -> None
  in
  prefix_rank ~strip ~matrix_ok:(fun g -> not (has_quantifier g)) f

let so_sigma_rank f =
  let strip = function
    | Exists2 (_, _, body) -> Some (`E, body)
    | Forall2 (_, _, body) -> Some (`A, body)
    | _ -> None
  in
  let rec so_free = function
    | True | False | Eq _ | Atom _ -> true
    | Not f -> so_free f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) ->
      so_free f && so_free g
    | Exists (_, f) | Forall (_, f) -> so_free f
    | Exists2 _ | Forall2 _ -> false
  in
  prefix_rank ~strip ~matrix_ok:so_free f
