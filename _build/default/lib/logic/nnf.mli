(** Negation normal form (paper, Section 5).

    The approximation algorithm first pushes all negations in a query
    "down to the atomic formulas": [¬∀x.φ ↦ ∃x.¬φ], [¬∃x.φ ↦ ∀x.¬φ],
    [¬(φ∧ψ) ↦ ¬φ∨¬ψ], [¬(φ∨ψ) ↦ ¬φ∧¬ψ], [¬¬φ ↦ φ], after first
    eliminating [→] and [↔]. Second-order quantifiers dualize the same
    way. In the result, [Not] appears only directly above [Eq] or
    [Atom]. *)

(** [transform f] is an NNF formula logically equivalent to [f]. *)
val transform : Formula.t -> Formula.t

(** [is_nnf f] checks that negations occur only on atoms and that [f]
    contains no [Implies]/[Iff]. *)
val is_nnf : Formula.t -> bool
