(** Queries (paper, Section 2.1).

    A query is an expression [(x1, ..., xk). φ] where [φ] is a formula
    and [x1 ... xk] is a sequence of distinct variables containing all
    free variables of [φ]. A query with an empty head is a Boolean
    query. *)

type t = private {
  head : string list;  (** the answer variables, in output-column order *)
  body : Formula.t;
}

(** [make head body] builds a query.

    @raise Invalid_argument if [head] has duplicates or misses a free
    variable of [body]. Head variables that do not occur in [body] are
    allowed (they quantify over the whole domain / constant set). *)
val make : string list -> Formula.t -> t

(** [boolean body] is [make [] body].
    @raise Invalid_argument if [body] has free variables. *)
val boolean : Formula.t -> t

val head : t -> string list
val body : t -> Formula.t
val arity : t -> int
val is_boolean : t -> bool

(** A query is positive when its body is (paper, Theorem 13). *)
val is_positive : t -> bool

val is_first_order : t -> bool
val equal : t -> t -> bool

(** [instantiate q tuple] is the sentence [φ(c)]: the body with each
    head variable replaced by the corresponding constant.
    @raise Invalid_argument on an arity mismatch. *)
val instantiate : t -> string list -> Formula.t

(** [map_body f q] rebuilds the query with body [f (body q)]; the head
    is kept.
    @raise Invalid_argument if the new body has free variables outside
    the head. *)
val map_body : (Formula.t -> Formula.t) -> t -> t
