open Formula

(* One local rewrite on a node whose children are already simplified;
   [None] when no rule applies. *)
let step = function
  | Not True -> Some False
  | Not False -> Some True
  | Not (Not f) -> Some f
  | Eq (s, t) when Term.equal s t -> Some True
  | And (True, f) | And (f, True) -> Some f
  | And (False, _) | And (_, False) -> Some False
  | And (f, g) when equal f g -> Some f
  (* absorption *)
  | And (f, Or (g, _)) when equal f g -> Some f
  | And (f, Or (_, g)) when equal f g -> Some f
  | And (Or (g, _), f) when equal f g -> Some f
  | And (Or (_, g), f) when equal f g -> Some f
  | Or (False, f) | Or (f, False) -> Some f
  | Or (True, _) | Or (_, True) -> Some True
  | Or (f, g) when equal f g -> Some f
  | Or (f, And (g, _)) when equal f g -> Some f
  | Or (f, And (_, g)) when equal f g -> Some f
  | Or (And (g, _), f) when equal f g -> Some f
  | Or (And (_, g), f) when equal f g -> Some f
  | Implies (True, f) -> Some f
  | Implies (False, _) -> Some True
  | Implies (_, True) -> Some True
  | Implies (f, False) -> Some (Not f)
  | Implies (f, g) when equal f g -> Some True
  | Iff (True, f) | Iff (f, True) -> Some f
  | Iff (False, f) | Iff (f, False) -> Some (Not f)
  | Iff (f, g) when equal f g -> Some True
  | Exists (x, f) when not (List.mem x (free_vars f)) -> Some f
  | Forall (x, f) when not (List.mem x (free_vars f)) -> Some f
  | True | False | Eq _ | Atom _ | Not _ | And _ | Or _ | Implies _ | Iff _
  | Exists _ | Forall _ | Exists2 _ | Forall2 _ ->
    None

let rec formula f =
  let f' =
    match f with
    | True | False | Eq _ | Atom _ -> f
    | Not g -> Not (formula g)
    | And (g, h) -> And (formula g, formula h)
    | Or (g, h) -> Or (formula g, formula h)
    | Implies (g, h) -> Implies (formula g, formula h)
    | Iff (g, h) -> Iff (formula g, formula h)
    | Exists (x, g) -> Exists (x, formula g)
    | Forall (x, g) -> Forall (x, formula g)
    | Exists2 (p, k, g) -> Exists2 (p, k, formula g)
    | Forall2 (p, k, g) -> Forall2 (p, k, formula g)
  in
  match step f' with
  | Some rewritten -> formula rewritten
  | None -> f'

let query q = Query.map_body formula q
