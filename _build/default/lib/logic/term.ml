type t =
  | Var of string
  | Const of string

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const x, Const y -> String.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let equal a b = compare a b = 0

let var x = Var x
let const c = Const c

let is_var = function Var _ -> true | Const _ -> false
let is_const = function Const _ -> true | Var _ -> false

let dedup_keep_order names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let vars_of ts =
  dedup_keep_order
    (List.filter_map (function Var x -> Some x | Const _ -> None) ts)

let consts_of ts =
  dedup_keep_order
    (List.filter_map (function Const c -> Some c | Var _ -> None) ts)

let rename_var ~from ~into t =
  match t with
  | Var x when String.equal x from -> Var into
  | Var _ | Const _ -> t

let substitute map t =
  match t with
  | Var x -> (match map x with Some t' -> t' | None -> t)
  | Const _ -> t

let pp ppf = function
  | Var x -> Fmt.string ppf x
  | Const c -> Fmt.string ppf c

let to_string = Fmt.to_to_string pp
