(** Pretty-printing of formulas and queries in the concrete syntax
    accepted by {!Parser} (round-trip: parsing the output of [pp_*]
    yields an equal AST).

    Concrete syntax summary:
    - atoms: [P(x, y)], [x = y], [x != y] (sugar for [~(x = y)])
    - connectives: [~φ], [φ /\ ψ], [φ \/ ψ], [φ -> ψ], [φ <-> ψ]
    - quantifiers: [exists x, y. φ], [forall x. φ] (maximal scope)
    - second order: [exists2 P/2. φ], [forall2 Q/1. φ]
    - queries: [(x, y). φ]; Boolean queries: [(). φ] *)

val pp_term : Term.t Fmt.t
val pp_formula : Formula.t Fmt.t
val pp_query : Query.t Fmt.t

val formula_to_string : Formula.t -> string
val query_to_string : Query.t -> string
