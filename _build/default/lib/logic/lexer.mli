(** Hand-rolled lexer for the concrete formula/query/database syntax. *)

type token =
  | IDENT of string
  | INT of int
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SLASH
  | COLON
  | EQ            (** [=] *)
  | NEQ           (** [!=] *)
  | AND           (** [/\ ] *)
  | OR            (** [\/] *)
  | NOT           (** [~] or [not] *)
  | ARROW         (** [->] *)
  | DARROW        (** [<->] *)
  | EXISTS
  | FORALL
  | EXISTS2
  | FORALL2
  | TRUE
  | FALSE
  | EOF

(** A token paired with its byte offset in the input (for error
    reporting). *)
type located = {
  token : token;
  pos : int;
}

exception Lex_error of int * string
(** [Lex_error (pos, message)]: unexpected character at byte [pos]. *)

(** [tokenize s] lexes the whole input. The result always ends with an
    [EOF] token. Comments run from [#] to end of line. Identifiers
    match [[A-Za-z_][A-Za-z0-9_']*] and may also be purely numeric
    ([INT]); keywords ([exists], [forall], [exists2], [forall2], [not],
    [true], [false]) are case-sensitive.

    @raise Lex_error on an unexpected character. *)
val tokenize : string -> located list

val pp_token : token Fmt.t
