(** Formula simplification: constant folding and local logical
    identities.

    Applied rules (bottom-up, to a fixpoint):
    - [True]/[False] folding through every connective;
    - [¬¬φ → φ]; [t = t → True];
    - idempotence [φ∧φ → φ], [φ∨φ → φ], and [φ→φ], [φ↔φ → True]
      (syntactic equality);
    - absorption [φ ∧ (φ ∨ ψ) → φ], [φ ∨ (φ ∧ ψ) → φ];
    - vacuous quantifiers: [∃x.φ → φ] and [∀x.φ → φ] when [x] is not
      free in [φ].

    The vacuous-quantifier rule is sound because every physical
    database in this library has a {e nonempty} domain (enforced by
    {!Vardi_relational.Database.make}), matching the standard
    convention for relational structures.

    Simplification never increases {!Formula.size} and preserves
    satisfaction on every database. *)

val formula : Formula.t -> Formula.t

(** [query q] simplifies the body; the head is unchanged. *)
val query : Query.t -> Query.t
