type t = {
  head : string list;
  body : Formula.t;
}

let make head body =
  let rec check_distinct = function
    | [] -> ()
    | x :: rest ->
      if List.mem x rest then
        invalid_arg (Printf.sprintf "Query.make: duplicate head variable %s" x);
      check_distinct rest
  in
  check_distinct head;
  let free = Formula.free_vars body in
  List.iter
    (fun x ->
      if not (List.mem x head) then
        invalid_arg
          (Printf.sprintf "Query.make: free variable %s missing from head" x))
    free;
  { head; body }

let boolean body = make [] body

let head q = q.head
let body q = q.body
let arity q = List.length q.head
let is_boolean q = q.head = []
let is_positive q = Formula.is_positive q.body
let is_first_order q = Formula.is_first_order q.body

let equal a b =
  List.equal String.equal a.head b.head && Formula.equal a.body b.body

let instantiate q tuple =
  if List.length tuple <> List.length q.head then
    invalid_arg "Query.instantiate: arity mismatch";
  Formula.instantiate (List.combine q.head tuple) q.body

let map_body f q = make q.head (f q.body)
