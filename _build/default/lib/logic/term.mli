(** First-order terms over a relational vocabulary.

    A relational vocabulary has no function symbols (paper, Section 2.1),
    so a term is either an individual variable or a constant symbol. *)

type t =
  | Var of string    (** an individual variable, e.g. [x1] *)
  | Const of string  (** a constant symbol, e.g. [socrates] *)

val compare : t -> t -> int
val equal : t -> t -> bool

val var : string -> t
val const : string -> t

val is_var : t -> bool
val is_const : t -> bool

(** [vars_of ts] is the list of distinct variable names occurring in
    [ts], in first-occurrence order. *)
val vars_of : t list -> string list

(** [consts_of ts] is the list of distinct constant names occurring in
    [ts], in first-occurrence order. *)
val consts_of : t list -> string list

(** [rename_var ~from ~into t] replaces the variable [from] by the
    variable [into]; constants and other variables are unchanged. *)
val rename_var : from:string -> into:string -> t -> t

(** [substitute map t] replaces a variable by [map]'s binding for it
    when one exists. Constants are never substituted. *)
val substitute : (string -> t option) -> t -> t

val pp : t Fmt.t
val to_string : t -> string
