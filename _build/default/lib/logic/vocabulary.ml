module String_map = Map.Make (String)
module String_set = Set.Make (String)

type t = {
  constants : String_set.t;
  predicates : int String_map.t;
}

let check_predicate name arity =
  if String.equal name "=" then
    invalid_arg "Vocabulary: equality is built in and cannot be declared";
  if arity < 0 then
    invalid_arg (Printf.sprintf "Vocabulary: negative arity for %s" name)

let add_predicate_map map (name, arity) =
  check_predicate name arity;
  match String_map.find_opt name map with
  | None -> String_map.add name arity map
  | Some a when a = arity -> map
  | Some a ->
    invalid_arg
      (Printf.sprintf "Vocabulary: predicate %s declared with arities %d and %d"
         name a arity)

let make ~constants ~predicates =
  {
    constants = String_set.of_list constants;
    predicates = List.fold_left add_predicate_map String_map.empty predicates;
  }

let empty = { constants = String_set.empty; predicates = String_map.empty }

let constants v = String_set.elements v.constants
let predicates v = String_map.bindings v.predicates

let mem_constant v c = String_set.mem c v.constants
let mem_predicate v p = String_map.mem p v.predicates

let arity v p =
  match String_map.find_opt p v.predicates with
  | Some a -> a
  | None -> raise Not_found

let arity_opt v p = String_map.find_opt p v.predicates

let add_constant v c = { v with constants = String_set.add c v.constants }

let add_predicate v p k =
  { v with predicates = add_predicate_map v.predicates (p, k) }

let union a b =
  {
    constants = String_set.union a.constants b.constants;
    predicates =
      String_map.fold
        (fun name arity acc -> add_predicate_map acc (name, arity))
        b.predicates a.predicates;
  }

let equal a b =
  String_set.equal a.constants b.constants
  && String_map.equal Int.equal a.predicates b.predicates

let pp ppf v =
  Fmt.pf ppf "@[<v>constants: %a@,predicates: %a@]"
    Fmt.(list ~sep:comma string)
    (constants v)
    Fmt.(list ~sep:comma (pair ~sep:(any "/") string int))
    (predicates v)
