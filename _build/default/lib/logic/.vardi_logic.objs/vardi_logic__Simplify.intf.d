lib/logic/simplify.mli: Formula Query
