lib/logic/lexer.ml: Fmt List Printf String
