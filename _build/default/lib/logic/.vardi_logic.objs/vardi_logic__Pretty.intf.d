lib/logic/pretty.mli: Fmt Formula Query Term
