lib/logic/prenex.ml: Formula List Map Nnf Printf Set String Term
