lib/logic/generate.ml: Formula List Printf Query Random Term Vocabulary
