lib/logic/formula.mli: Term
