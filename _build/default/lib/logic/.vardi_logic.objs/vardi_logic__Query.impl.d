lib/logic/query.ml: Formula List Printf String
