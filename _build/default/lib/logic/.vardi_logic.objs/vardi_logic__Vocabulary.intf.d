lib/logic/vocabulary.mli: Fmt
