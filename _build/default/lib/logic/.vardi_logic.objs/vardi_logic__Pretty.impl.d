lib/logic/pretty.ml: Fmt Formula List Query Term
