lib/logic/term.mli: Fmt
