lib/logic/nnf.ml: Formula
