lib/logic/parser.mli: Formula Query Term
