lib/logic/generate.mli: Formula Query Random Vocabulary
