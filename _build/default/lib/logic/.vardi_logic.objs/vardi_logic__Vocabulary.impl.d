lib/logic/vocabulary.ml: Fmt Int List Map Printf Set String
