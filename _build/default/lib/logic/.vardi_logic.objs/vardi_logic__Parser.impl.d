lib/logic/parser.ml: Array Fmt Formula Lexer List Query Set String Term
