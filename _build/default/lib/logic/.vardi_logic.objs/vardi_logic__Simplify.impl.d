lib/logic/simplify.ml: Formula List Query Term
