lib/logic/lexer.mli: Fmt
