lib/logic/query.mli: Formula
