lib/logic/prenex.mli: Formula
