lib/logic/formula.ml: Hashtbl List Printf Set Stdlib String Term
