lib/logic/term.ml: Fmt Hashtbl List String
