exception Unsupported of string

module String_map = Map.Make (String)
module String_set = Set.Make (String)

type quantifier =
  | Q_exists
  | Q_forall

let is_prenex f =
  let rec matrix_free = function
    | Formula.True | Formula.False | Formula.Eq _ | Formula.Atom _ -> true
    | Formula.Not g -> matrix_free g
    | Formula.And (a, b)
    | Formula.Or (a, b)
    | Formula.Implies (a, b)
    | Formula.Iff (a, b) ->
      matrix_free a && matrix_free b
    | Formula.Exists _ | Formula.Forall _ | Formula.Exists2 _
    | Formula.Forall2 _ ->
      false
  in
  let rec strip = function
    | Formula.Exists (_, g) | Formula.Forall (_, g) -> strip g
    | g -> g
  in
  matrix_free (strip f)

let transform f =
  if not (Formula.is_first_order f) then
    raise (Unsupported "prenex transformation covers first-order formulas only");
  let f = Nnf.transform f in
  (* Global freshness: every binder gets a name distinct from all free
     variables and from every earlier binder, so extracted prefixes
     never capture. A binder keeps its own name when it is the first
     with that name. *)
  let used = ref (String_set.of_list (Formula.free_vars f)) in
  let fresh base =
    let candidate =
      if String_set.mem base !used then begin
        let rec try_index i =
          let name = Printf.sprintf "%s_%d" base i in
          if String_set.mem name !used then try_index (i + 1) else name
        in
        try_index 1
      end
      else base
    in
    used := String_set.add candidate !used;
    candidate
  in
  let apply env term =
    match term with
    | Term.Var x -> (
      match String_map.find_opt x env with
      | Some x' -> Term.Var x'
      | None -> term)
    | Term.Const _ -> term
  in
  (* Returns (prefix outermost-first, quantifier-free matrix). *)
  let rec go env = function
    | (Formula.True | Formula.False) as g -> ([], g)
    | Formula.Eq (s, t) -> ([], Formula.Eq (apply env s, apply env t))
    | Formula.Atom (p, ts) -> ([], Formula.Atom (p, List.map (apply env) ts))
    | Formula.Not g ->
      (* NNF: [g] is atomic, hence quantifier-free. *)
      let prefix, matrix = go env g in
      assert (prefix = []);
      ([], Formula.Not matrix)
    | Formula.And (a, b) ->
      let pa, ma = go env a in
      let pb, mb = go env b in
      (pa @ pb, Formula.And (ma, mb))
    | Formula.Or (a, b) ->
      let pa, ma = go env a in
      let pb, mb = go env b in
      (pa @ pb, Formula.Or (ma, mb))
    | Formula.Exists (x, g) ->
      let x' = fresh x in
      let prefix, matrix = go (String_map.add x x' env) g in
      ((Q_exists, x') :: prefix, matrix)
    | Formula.Forall (x, g) ->
      let x' = fresh x in
      let prefix, matrix = go (String_map.add x x' env) g in
      ((Q_forall, x') :: prefix, matrix)
    | Formula.Implies _ | Formula.Iff _ ->
      (* NNF eliminates these. *)
      assert false
    | Formula.Exists2 _ | Formula.Forall2 _ ->
      (* Ruled out by the first-order check above. *)
      assert false
  in
  let prefix, matrix = go String_map.empty f in
  List.fold_right
    (fun (q, x) body ->
      match q with
      | Q_exists -> Formula.Exists (x, body)
      | Q_forall -> Formula.Forall (x, body))
    prefix matrix

let rank f =
  match Formula.fo_sigma_rank (transform f) with
  | Some k -> k
  | None -> assert false (* transform always yields a prenex formula *)
