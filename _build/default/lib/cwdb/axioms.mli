(** The five-component theory of a CW logical database (paper,
    Section 2.2), reconstructed as explicit formulas.

    These are used to {e check} models (tests verify that [Ph₁(LB)]
    satisfies [T], that [h(Ph₁(LB))] satisfies [T] exactly when [h]
    respects [T], and so on); the evaluation engines never need to
    materialize them. *)

(** Atomic fact axioms, e.g. [TEACHES(socrates, plato)]. *)
val atomic_facts : Cw_database.t -> Vardi_logic.Formula.t list

(** Uniqueness axioms [¬(ci = cj)]. *)
val uniqueness : Cw_database.t -> Vardi_logic.Formula.t list

(** The domain closure axiom [∀x (x = c1 ∨ ... ∨ x = cn)]. *)
val domain_closure : Cw_database.t -> Vardi_logic.Formula.t

(** Completion axiom for one predicate:
    [∀x (P(x) → x = c¹ ∨ ... ∨ x = cᵐ)], or [∀x ¬P(x)] when [P] has no
    facts. For a 0-ary predicate with no facts this degenerates to
    [¬P()]. *)
val completion : Cw_database.t -> string -> Vardi_logic.Formula.t

(** All completion axioms, one per predicate, in vocabulary order. *)
val completions : Cw_database.t -> Vardi_logic.Formula.t list

(** The whole theory [T], in the paper's order: atomic facts,
    uniqueness, domain closure, completions. *)
val theory : Cw_database.t -> Vardi_logic.Formula.t list

(** [Unique(T)]: the conjunction of the uniqueness axioms (paper,
    Section 5). *)
val unique_conjunction : Cw_database.t -> Vardi_logic.Formula.t

(** [is_model db pb] decides whether physical database [pb] satisfies
    every sentence of [theory db] — i.e. whether [pb] is a possible
    world of [db]. *)
val is_model : Cw_database.t -> Vardi_relational.Database.t -> bool
