module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term

module Pair_set = Set.Make (struct
  type t = string * string

  let compare (a1, a2) (b1, b2) =
    let c = String.compare a1 b1 in
    if c <> 0 then c else String.compare a2 b2
end)

module String_set = Set.Make (String)

type t = {
  unknowns : String_set.t;
  stored : Pair_set.t;  (* normalized: smaller constant first *)
}

let normalize c d = if String.compare c d <= 0 then (c, d) else (d, c)

let make db =
  let unknowns = String_set.of_list (Cw_database.unknown_values db) in
  let stored =
    List.fold_left
      (fun acc (c, d) ->
        if String_set.mem c unknowns || String_set.mem d unknowns then
          Pair_set.add (normalize c d) acc
        else acc)
      Pair_set.empty (Cw_database.distinct_pairs db)
  in
  { unknowns; stored }

let unknowns t = String_set.elements t.unknowns
let stored_pairs t = Pair_set.elements t.stored

let holds t x y =
  Pair_set.mem (normalize x y) t.stored
  || ((not (String_set.mem x t.unknowns))
     && (not (String_set.mem y t.unknowns))
     && not (String.equal x y))

let storage_size t = Pair_set.cardinal t.stored + String_set.cardinal t.unknowns

let explicit_size db = List.length (Cw_database.distinct_pairs db)

let virtuals t name =
  if String.equal name Ph.ne_predicate then
    Some
      (function
      | [ x; y ] -> holds t x y
      | args ->
        invalid_arg
          (Printf.sprintf "Ne_virtual: NE applied to %d arguments"
             (List.length args)))
  else None

let defining_formula =
  let x = Term.var "x" and y = Term.var "y" in
  Formula.Or
    ( Formula.Atom ("NE'", [ x; y ]),
      Formula.conj
        [
          Formula.Not (Formula.Atom ("U", [ x ]));
          Formula.Not (Formula.Atom ("U", [ y ]));
          Formula.neq x y;
        ] )
