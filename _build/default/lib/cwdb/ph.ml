module Vocabulary = Vardi_logic.Vocabulary
module Database = Vardi_relational.Database
module Relation = Vardi_relational.Relation

let ne_predicate = "NE"

let relations_of db =
  let vocabulary = Cw_database.vocabulary db in
  List.map
    (fun (p, k) -> (p, Relation.of_tuples k (Cw_database.facts_of db p)))
    (Vocabulary.predicates vocabulary)

let ph1 db =
  let constants = Cw_database.constants db in
  Database.make
    ~vocabulary:(Cw_database.vocabulary db)
    ~domain:constants
    ~constants:(List.map (fun c -> (c, c)) constants)
    ~relations:(relations_of db)

let ph2 db =
  let vocabulary = Cw_database.vocabulary db in
  if Vocabulary.mem_predicate vocabulary ne_predicate then
    invalid_arg
      (Printf.sprintf "Ph.ph2: the vocabulary already declares %s" ne_predicate);
  let constants = Cw_database.constants db in
  let ne_tuples =
    List.concat_map
      (fun (c, d) -> [ [ c; d ]; [ d; c ] ])
      (Cw_database.distinct_pairs db)
  in
  Database.make
    ~vocabulary:(Vocabulary.add_predicate vocabulary ne_predicate 2)
    ~domain:constants
    ~constants:(List.map (fun c -> (c, c)) constants)
    ~relations:((ne_predicate, Relation.of_tuples 2 ne_tuples) :: relations_of db)
