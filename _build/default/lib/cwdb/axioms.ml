module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Vocabulary = Vardi_logic.Vocabulary
module Eval = Vardi_relational.Eval

let atomic_facts db =
  List.map
    (fun { Cw_database.pred; args } ->
      Formula.Atom (pred, List.map Term.const args))
    (Cw_database.facts db)

let uniqueness db =
  List.map
    (fun (c, d) -> Formula.neq (Term.const c) (Term.const d))
    (Cw_database.distinct_pairs db)

let domain_closure db =
  let x = Term.Var "x" in
  let disjuncts =
    List.map (fun c -> Formula.Eq (x, Term.const c)) (Cw_database.constants db)
  in
  Formula.Forall ("x", Formula.disj disjuncts)

let completion db p =
  let arity = Vocabulary.arity (Cw_database.vocabulary db) p in
  let vars = List.init arity (Printf.sprintf "x%d") in
  let terms = List.map Term.var vars in
  match Cw_database.facts_of db p with
  | [] -> Formula.forall_many vars (Formula.Not (Formula.Atom (p, terms)))
  | tuples ->
    let equals_tuple tuple =
      Formula.conj
        (List.map2 (fun v c -> Formula.Eq (Term.var v, Term.const c)) vars tuple)
    in
    Formula.forall_many vars
      (Formula.Implies
         (Formula.Atom (p, terms), Formula.disj (List.map equals_tuple tuples)))

let completions db =
  List.map
    (fun (p, _) -> completion db p)
    (Vocabulary.predicates (Cw_database.vocabulary db))

let theory db =
  atomic_facts db @ uniqueness db @ [ domain_closure db ] @ completions db

let unique_conjunction db = Formula.conj (uniqueness db)

let is_model db pb =
  List.for_all (fun sentence -> Eval.satisfies pb sentence) (theory db)
