(** Validation of queries against a CW database's vocabulary: queries
    over [LB = (L, T)] must be expressions of [L] (paper, Section 2.1).
    Second-order predicate variables are exempt (they are bound by
    their own quantifiers). *)

(** [validate lb q] checks that every free predicate of the query body
    is declared in [L] with the right arity and every constant belongs
    to [C].
    @raise Invalid_argument on a violation. *)
val validate : Cw_database.t -> Vardi_logic.Query.t -> unit

(** [validate_tuple lb q tuple] additionally checks a candidate answer:
    right arity, all members constants of [C].
    @raise Invalid_argument on a violation. *)
val validate_tuple :
  Cw_database.t -> Vardi_logic.Query.t -> string list -> unit
