(** The compact, virtual representation of the [NE] relation (paper,
    end of Section 5).

    Materializing [NE] explicitly can cost up to a quadratic number of
    pairs, yet in practice most values are {e known}. The paper stores
    instead a unary relation [U] of unknown values and a binary [NE′]
    of the inequalities known about values in [U], and defines

    [NE(x, y) ≡ NE′(x, y) ∨ (¬U(x) ∧ ¬U(y) ∧ ¬(x = y))].

    A constant is {e known} when a uniqueness axiom separates it from
    every other constant; then all known-known pairs are automatically
    unequal and only pairs touching [U] need storing. For a fully
    specified database, [U] and [NE′] are empty and [NE(x,y)] reduces
    to [¬(x = y)]. *)

type t

val make : Cw_database.t -> t

(** The unknown-value set [U], sorted. *)
val unknowns : t -> string list

(** The stored pairs [NE′] (symmetric: both orientations counted once;
    pairs are reported with the smaller constant first). *)
val stored_pairs : t -> (string * string) list

(** [holds t x y] evaluates the virtual [NE(x, y)]. *)
val holds : t -> string -> string -> bool

(** Storage cost (number of stored pairs plus [|U|]), versus
    [explicit_size], the number of unordered pairs an explicit [NE]
    would store. Benched by experiment E9. *)
val storage_size : t -> int

val explicit_size : Cw_database.t -> int

(** A {!Vardi_relational.Eval.virtuals} hook exposing the virtual [NE]
    under {!Ph.ne_predicate}, so [Ph₁(LB)] plus this hook behaves
    exactly like [Ph₂(LB)]. *)
val virtuals : t -> Vardi_relational.Eval.virtuals

(** The defining formula of the virtual relation, with [NE′] and [U]
    as atoms — for documentation and the algebra pipeline:
    [NE'(x,y) \/ (~U(x) /\ ~U(y) /\ x != y)]. *)
val defining_formula : Vardi_logic.Formula.t
