module Database = Vardi_relational.Database
module String_map = Map.Make (String)

type t = {
  db : Cw_database.t;
  map : string String_map.t;  (* total on the constants of [db] *)
}

let of_assoc db pairs =
  let constants = Cw_database.constants db in
  let is_constant c = List.mem c constants in
  List.iter
    (fun (c, d) ->
      if not (is_constant c && is_constant d) then
        invalid_arg
          (Printf.sprintf "Mapping.of_assoc: %s -> %s mentions a non-constant" c
             d))
    pairs;
  let map =
    List.fold_left
      (fun acc c ->
        let target =
          match List.assoc_opt c pairs with Some d -> d | None -> c
        in
        String_map.add c target acc)
      String_map.empty constants
  in
  { db; map }

let identity db = of_assoc db []

let apply h c =
  match String_map.find_opt c h.map with
  | Some d -> d
  | None -> raise Not_found

let apply_tuple h tuple = List.map (apply h) tuple

let respects h =
  List.for_all
    (fun (c, d) -> not (String.equal (apply h c) (apply h d)))
    (Cw_database.distinct_pairs h.db)

let image_db h = Database.map_elements (apply h) (Ph.ph1 h.db)

let count_all db =
  let n = Float.of_int (List.length (Cw_database.constants db)) in
  n ** n

let all db =
  let constants = Array.of_list (Cw_database.constants db) in
  let n = Array.length constants in
  if count_all db > Float.of_int (1 lsl 24) then
    invalid_arg
      (Printf.sprintf "Mapping.all: %d^%d mappings exceeds the enumeration cap"
         n n);
  (* Enumerate base-n counters of n digits; digit i gives h(c_i). *)
  let total =
    int_of_float (count_all db)
  in
  let of_index index =
    let rec digits i value acc =
      if i >= n then acc
      else
        digits (i + 1) (value / n)
          (String_map.add constants.(i) constants.(value mod n) acc)
    in
    { db; map = digits 0 index String_map.empty }
  in
  Seq.map of_index (Seq.init (max total 1) Fun.id)

let all_respecting db = Seq.filter respects (all db)

let equal a b =
  Cw_database.equal a.db b.db && String_map.equal String.equal a.map b.map

let pp ppf h =
  let bindings = String_map.bindings h.map in
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any " -> ") string string))
    bindings
