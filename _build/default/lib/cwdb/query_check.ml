module Formula = Vardi_logic.Formula
module Query = Vardi_logic.Query
module Vocabulary = Vardi_logic.Vocabulary

let validate lb q =
  let vocabulary = Cw_database.vocabulary lb in
  let body = Query.body q in
  List.iter
    (fun (p, k) ->
      match Vocabulary.arity_opt vocabulary p with
      | None ->
        invalid_arg
          (Printf.sprintf "query predicate %s is not in the vocabulary" p)
      | Some k' ->
        if k <> k' then
          invalid_arg
            (Printf.sprintf "query uses predicate %s with arity %d, declared %d"
               p k k'))
    (Formula.free_preds body);
  List.iter
    (fun c ->
      if not (Vocabulary.mem_constant vocabulary c) then
        invalid_arg
          (Printf.sprintf "query constant %s is not in the vocabulary" c))
    (Formula.constants body)

let validate_tuple lb q tuple =
  if List.length tuple <> Query.arity q then
    invalid_arg "candidate tuple arity differs from the query head";
  List.iter
    (fun c ->
      if not (Vocabulary.mem_constant (Cw_database.vocabulary lb) c) then
        invalid_arg
          (Printf.sprintf "candidate constant %s is not in the vocabulary" c))
    tuple
