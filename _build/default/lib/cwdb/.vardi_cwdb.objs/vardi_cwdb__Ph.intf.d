lib/cwdb/ph.mli: Cw_database Vardi_relational
