lib/cwdb/ne_virtual.mli: Cw_database Vardi_logic Vardi_relational
