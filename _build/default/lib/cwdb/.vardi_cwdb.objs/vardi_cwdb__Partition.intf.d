lib/cwdb/partition.mli: Cw_database Fmt Mapping Seq Vardi_relational
