lib/cwdb/partition.ml: Cw_database Fmt Fun List Map Mapping Printf Seq String
