lib/cwdb/cw_database.ml: Fmt List Printf Set String Vardi_logic
