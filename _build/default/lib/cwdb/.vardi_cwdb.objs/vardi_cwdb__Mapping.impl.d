lib/cwdb/mapping.ml: Array Cw_database Float Fmt Fun List Map Ph Printf Seq String Vardi_relational
