lib/cwdb/ph.ml: Cw_database List Printf Vardi_logic Vardi_relational
