lib/cwdb/query_check.ml: Cw_database List Printf Vardi_logic
