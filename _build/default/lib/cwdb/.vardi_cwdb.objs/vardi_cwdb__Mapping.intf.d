lib/cwdb/mapping.mli: Cw_database Fmt Seq Vardi_relational
