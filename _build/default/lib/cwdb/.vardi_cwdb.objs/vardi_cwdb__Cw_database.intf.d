lib/cwdb/cw_database.mli: Fmt Vardi_logic
