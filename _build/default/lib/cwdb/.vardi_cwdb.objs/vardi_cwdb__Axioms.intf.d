lib/cwdb/axioms.mli: Cw_database Vardi_logic Vardi_relational
