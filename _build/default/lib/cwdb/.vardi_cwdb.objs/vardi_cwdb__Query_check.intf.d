lib/cwdb/query_check.mli: Cw_database Vardi_logic
