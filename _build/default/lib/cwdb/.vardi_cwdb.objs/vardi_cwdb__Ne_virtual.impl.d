lib/cwdb/ne_virtual.ml: Cw_database List Ph Printf Set String Vardi_logic
