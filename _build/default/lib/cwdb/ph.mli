(** The canonical physical databases [Ph₁(LB)] and [Ph₂(LB)] (paper,
    Sections 3.1 and 3.2).

    [Ph₁(LB) = (L, I)]: domain is the constant set [C], [I] is the
    identity on constants, and [I(P) = { c : P(c) ∈ T }].

    [Ph₂(LB) = (L′, I)]: the same, over the vocabulary [L′ = L ∪ {NE}],
    with [I(NE) = { (ci, cj) : ¬(ci = cj) ∈ T }] (stored symmetrically:
    the paper identifies [¬(ci=cj)] with [¬(cj=ci)]). *)

(** Name of the added inequality predicate in [L′]. *)
val ne_predicate : string

val ph1 : Cw_database.t -> Vardi_relational.Database.t

(** @raise Invalid_argument if the vocabulary of [LB] already declares
    a predicate named [NE]. *)
val ph2 : Cw_database.t -> Vardi_relational.Database.t
