(** Kernel partitions of the constant set.

    Two mappings [h : C → C] with the same kernel (the partition of [C]
    into preimage classes) yield isomorphic image databases
    [h(Ph₁(LB))], via the bijection [h₁(c) ↦ h₂(c)] — which also maps
    the interpretation of each constant symbol correspondingly. Since
    query satisfaction is isomorphism-invariant, Theorem 1's universal
    quantification over mappings reduces to a universal quantification
    over {e kernel partitions} whose blocks are independent sets of the
    distinctness graph (a mapping respects [T] iff its kernel never
    merges a pair with a uniqueness axiom).

    This cuts the search space from [|C|^|C|] mappings to at most
    Bell(|C|) partitions, and usually far fewer once uniqueness axioms
    prune blocks. The quotient database of a partition is the image
    database of the representative mapping [c ↦ min(block(c))]. *)

type t

(** Blocks, each sorted, sorted by first element. Blocks partition the
    constant set. *)
val blocks : t -> string list list

(** [representative p c] is the canonical representative (minimum) of
    [c]'s block.
    @raise Not_found when [c] is not a constant. *)
val representative : t -> string -> string

(** The representative mapping as a {!Mapping.t}. *)
val to_mapping : t -> Mapping.t

(** [quotient p] is the image database under the representative
    mapping. *)
val quotient : t -> Vardi_relational.Database.t

(** [discrete db] is the partition into singletons (kernel of the
    identity). *)
val discrete : Cw_database.t -> t

(** [of_blocks db blocks] builds a partition explicitly.
    @raise Invalid_argument if [blocks] does not partition the constant
    set or merges a pair carrying a uniqueness axiom. *)
val of_blocks : Cw_database.t -> string list list -> t

(** Enumeration order for {!all_valid}. [Fresh_first] tries opening a
    new block before joining existing ones, so the discrete partition
    comes first and heavily-merged partitions come last. [Merge_first]
    is the mirror image: heavily-merged partitions come early — a
    countermodel-seeking heuristic, since certain-answer countermodels
    typically require merging unknowns (e.g. the Theorem 5 reduction's
    proper colorings merge every vertex constant into a color class). *)
type order =
  | Fresh_first
  | Merge_first

(** [all_valid ?order db] lazily enumerates every partition of [C]
    whose blocks are independent in the distinctness graph — exactly
    the kernels of mappings that respect [T]. Default order:
    [Fresh_first] (the discrete partition first). *)
val all_valid : ?order:order -> Cw_database.t -> t Seq.t

(** [count_valid db] counts the partitions [all_valid] yields. *)
val count_valid : Cw_database.t -> int

(** [count_valid_up_to cap db] counts lazily, stopping at [cap] — use
    to probe whether a database is within an exact-evaluation budget
    without paying for the full enumeration. *)
val count_valid_up_to : int -> Cw_database.t -> int

val equal : t -> t -> bool
val pp : t Fmt.t
