(** Deterministic workload generators shared by the experiments and
    the Bechamel benches. *)

(** [parametric_db ~constants ~unknowns ~seed] builds a CW database
    over [constants] constants named [k0 ... k<n-1>], with predicates
    [P/1] and [R/2], random facts (density held proportional to the
    constant count, deterministic in [seed]), and uniqueness axioms
    making every pair distinct {e except} pairs involving the first
    [unknowns] constants — so [unknowns = 0] is fully specified.
    @raise Invalid_argument when [unknowns > constants] or
    [constants < 1]. *)
val parametric_db :
  constants:int -> unknowns:int -> seed:int -> Vardi_cwdb.Cw_database.t

(** A fixed query mixing positive and negative subformulas (so the
    approximation is exercised on its incomplete fragment):
    [(x). (exists y. R(x, y)) /\ ~P(x)]. *)
val mixed_query : Vardi_logic.Query.t

(** A fixed positive query: [(x). exists y. R(x, y) /\ P(y)]. *)
val positive_query : Vardi_logic.Query.t

(** A fixed negative Boolean query:
    [(). exists x. ~P(x) /\ exists y. R(x, y)]. *)
val negative_sentence : Vardi_logic.Query.t

(** Pools of random database/query pairs for the quality experiment
    (E6), deterministic in [seed]. *)
val random_pairs :
  count:int -> seed:int -> (Vardi_cwdb.Cw_database.t * Vardi_logic.Query.t) list
