module Certain = Vardi_certain.Engine
module Approx = Vardi_approx.Evaluate
module Naive = Vardi_approx.Naive_tables
module Relation = Vardi_relational.Relation
module Cw_database = Vardi_cwdb.Cw_database
module Query = Vardi_logic.Query

type bucket = {
  mutable pairs : int;
  mutable naive_sound : int;
  mutable naive_complete : int;
  mutable approx_sound : int;
  mutable approx_complete : int;
}

let fresh () =
  {
    pairs = 0;
    naive_sound = 0;
    naive_complete = 0;
    approx_sound = 0;
    approx_complete = 0;
  }

let percent num den =
  if den = 0 then "n/a"
  else Printf.sprintf "%.1f%%" (100.0 *. float num /. float den)

let e11 () =
  let pairs = Workloads.random_pairs ~count:400 ~seed:777 in
  let positive = fresh () in
  let negative = fresh () in
  List.iter
    (fun (db, q) ->
      let bucket = if Query.is_positive q then positive else negative in
      let exact = Certain.answer db q in
      let naive = Naive.answer db q in
      let approx = Approx.answer db q in
      bucket.pairs <- bucket.pairs + 1;
      if Relation.subset naive exact then
        bucket.naive_sound <- bucket.naive_sound + 1;
      if Relation.equal naive exact then
        bucket.naive_complete <- bucket.naive_complete + 1;
      if Relation.subset approx exact then
        bucket.approx_sound <- bucket.approx_sound + 1;
      if Relation.equal approx exact then
        bucket.approx_complete <- bucket.approx_complete + 1)
    pairs;
  let row name b =
    [
      name;
      string_of_int b.pairs;
      percent b.naive_sound b.pairs;
      percent b.naive_complete b.pairs;
      percent b.approx_sound b.pairs;
      percent b.approx_complete b.pairs;
    ]
  in
  Table.make ~id:"E11"
    ~title:"baseline: naive tables (nulls as fresh values) vs Section 5"
    ~paper_claim:
      "Introduction: 'in representing incomplete information ... the \
       physical database approach was less than successful' — naive \
       evaluation is unsound under negation; the paper's algorithm is \
       always sound at the same polynomial cost"
    ~header:
      [
        "query fragment";
        "pairs";
        "naive sound";
        "naive exact";
        "approx sound";
        "approx exact";
      ]
    ~notes:
      [
        "'sound' = no returned tuple lies outside the certain answer; \
         'exact' = equal to the certain answer;";
        "positive queries: both methods coincide with the exact answer \
         (Imielinski-Lipski / Theorem 13); with negation, naive soundness \
         collapses while the approximation stays at 100%.";
      ]
    [ row "positive" positive; row "with negation" negative ]
