module Certain = Vardi_certain.Engine
module Approx = Vardi_approx.Evaluate
module Relation = Vardi_relational.Relation
module Cw_database = Vardi_cwdb.Cw_database
module Query = Vardi_logic.Query

type bucket = {
  mutable pairs : int;
  mutable sound : int;
  mutable complete : int;
  mutable certain_tuples : int;
  mutable recovered_tuples : int;
}

let fresh () =
  { pairs = 0; sound = 0; complete = 0; certain_tuples = 0; recovered_tuples = 0 }

let record bucket ~exact ~approx =
  bucket.pairs <- bucket.pairs + 1;
  if Relation.subset approx exact then bucket.sound <- bucket.sound + 1;
  if Relation.equal approx exact then bucket.complete <- bucket.complete + 1;
  bucket.certain_tuples <- bucket.certain_tuples + Relation.cardinal exact;
  bucket.recovered_tuples <- bucket.recovered_tuples + Relation.cardinal approx

let percent num den =
  if den = 0 then "n/a" else Printf.sprintf "%.1f%%" (100.0 *. float num /. float den)

let e6 () =
  let pairs = Workloads.random_pairs ~count:400 ~seed:2026 in
  let all = fresh () in
  let fully_specified = fresh () in
  let positive = fresh () in
  let residual = fresh () in
  List.iter
    (fun (db, q) ->
      let exact = Certain.answer db q in
      let approx = Approx.answer db q in
      record all ~exact ~approx;
      if Cw_database.is_fully_specified db then
        record fully_specified ~exact ~approx
      else if Query.is_positive q then record positive ~exact ~approx
      else record residual ~exact ~approx)
    pairs;
  let row name b =
    [
      name;
      string_of_int b.pairs;
      percent b.sound b.pairs;
      percent b.complete b.pairs;
      percent b.recovered_tuples b.certain_tuples;
    ]
  in
  Table.make ~id:"E6"
    ~title:"approximation quality on random database/query pairs"
    ~paper_claim:
      "Thm 11: always sound; Thm 12: complete when fully specified; Thm 13: \
       complete on positive queries; incomplete only on the residual \
       fragment"
    ~header:[ "fragment"; "pairs"; "sound"; "complete"; "tuple recall" ]
    ~notes:
      [
        "'tuple recall' = certain tuples the approximation recovered / all \
         certain tuples;";
        "rows 'fully specified' and 'positive' must read 100% / 100% — \
         those are Theorems 12 and 13.";
      ]
    [
      row "all pairs" all;
      row "fully specified" fully_specified;
      row "positive query (open db)" positive;
      row "residual (negative, open db)" residual;
    ]
