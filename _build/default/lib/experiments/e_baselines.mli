(** Experiment E11: the naive-tables baseline vs the Section 5
    algorithm.

    The paper's introduction motivates logical databases by the
    failure of null-value physical databases ("the physical database
    approach was less than successful [Fa82]"). The concrete failure is
    measurable: naive evaluation over [Ph₁] (unknowns as fresh values)
    is {e unsound} for certain answers as soon as negation meets an
    unknown value, while the paper's approximation stays 100% sound at
    the same polynomial cost. On positive queries the two coincide. *)

val e11 : unit -> Table.t
