(** Plain-text result tables for the experiment reports (EXPERIMENTS.md
    is generated from these). *)

type t = {
  id : string;        (** e.g. "E3" *)
  title : string;
  paper_claim : string;
      (** what the paper's theorem predicts, one line *)
  header : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string ->
  title:string ->
  paper_claim:string ->
  header:string list ->
  ?notes:string list ->
  string list list ->
  t

(** Pretty-print with aligned columns. *)
val pp : t Fmt.t

(** Render as GitHub-flavoured markdown (for EXPERIMENTS.md). *)
val to_markdown : t -> string

(** Format milliseconds compactly. *)
val ms : float -> string

(** [time f] runs [f] and returns its result with elapsed CPU
    milliseconds. *)
val time : (unit -> 'a) -> 'a * float
