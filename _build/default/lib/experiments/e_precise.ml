module Certain = Vardi_certain.Engine
module Precise = Vardi_approx.Precise_simulation
module Relation = Vardi_relational.Relation
module Cw_database = Vardi_cwdb.Cw_database

let queries =
  List.map Vardi_logic.Parser.query
    [ "(x). P(x)"; "(x). ~P(x)"; "(). forall x. P(x)"; "(x). x != k0" ]

let e2 () =
  let rows =
    List.map
      (fun (constants, unknowns) ->
        let db =
          (* Only P/1 matters here: drop R's facts by rebuilding over a
             unary-only vocabulary to keep the SO search space small. *)
          let base =
            Workloads.parametric_db ~constants ~unknowns ~seed:11
          in
          Cw_database.make
            ~vocabulary:
              (Vardi_logic.Vocabulary.make
                 ~constants:(Cw_database.constants base)
                 ~predicates:[ ("P", 1) ])
            ~facts:
              (List.filter
                 (fun f -> String.equal f.Cw_database.pred "P")
                 (Cw_database.facts base))
            ~distinct:(Cw_database.distinct_pairs base)
        in
        let results =
          List.map
            (fun q ->
              let exact, exact_ms = Table.time (fun () -> Certain.answer db q) in
              let simulated, sim_ms =
                Table.time (fun () -> Precise.answer db q)
              in
              (Relation.equal exact simulated, exact_ms, sim_ms))
            queries
        in
        let all_agree = List.for_all (fun (ok, _, _) -> ok) results in
        let total f = List.fold_left (fun a r -> a +. f r) 0.0 results in
        [
          string_of_int constants;
          string_of_int unknowns;
          string_of_int (List.length queries);
          string_of_bool all_agree;
          Table.ms (total (fun (_, e, _) -> e));
          Table.ms (total (fun (_, _, s) -> s));
        ])
      [ (2, 0); (2, 2); (3, 1); (3, 3) ]
  in
  Table.make ~id:"E2"
    ~title:"Theorem 3 precise simulation: Q(LB) = Q'(Ph2(LB))"
    ~paper_claim:
      "Thm 3: a second-order query Q' over Ph2 computes the exact certain \
       answer; the universal SO quantification makes it impractical \
       ('we do not suggest using Theorem 3 for a practical implementation')"
    ~header:
      [ "|C|"; "unknowns"; "queries"; "all agree"; "exact ms"; "Q' ms" ]
    ~notes:
      [
        "Q' quantifies over all binary relations on C: 2^(|C|^2) \
         candidates for H at |C| = 3 — the blow-up column.";
      ]
    rows
