(** Experiment E2 (Theorem 3): the precise second-order simulation
    agrees with the exact engine, and its cost — dominated by the
    universal second-order quantification over [H ⊆ C²] — explodes
    even at toy sizes, which is the paper's argument that the hidden
    quantification, not the data, is the obstacle. *)

val e2 : unit -> Table.t
