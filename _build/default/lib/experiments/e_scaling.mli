(** Experiments E1 and E7: the cost of exactness.

    E1 (Theorem 1 / Corollary 2): with the database size fixed, the
    number of kernel partitions — and hence exact evaluation time —
    grows exponentially with the number of {e unknown} constants, and
    collapses to a single structure when the database is fully
    specified.

    E7 (Theorem 14): with the unknown count fixed, the approximation's
    evaluation time grows polynomially in the database size while the
    exact engine's remains dominated by the exponential partition
    count; the approximation keeps scaling where the exact engine
    becomes infeasible. *)

val e1 : unit -> Table.t
val e7 : unit -> Table.t

(** E10 (Section 4, discussion before Theorem 5): {e expression}
    complexity over logical databases exceeds the physical case by a
    factor bounded by the number of mappings/partitions of the fixed
    database — i.e., for a fixed [LB] the logical/physical time ratio
    stays roughly constant as the query grows. *)
val e10 : unit -> Table.t
