(** The experiment registry: every table of the reproduction, in
    report order. *)

(** [(id, description, runner)] triples, E1–E9 then A1–A3. *)
val all : (string * string * (unit -> Table.t)) list

(** [run_all ()] executes every experiment and returns the tables. *)
val run_all : unit -> Table.t list

(** [find id] looks up one experiment by id (case-insensitive). *)
val find : string -> (unit -> Table.t) option
