module Alpha = Vardi_approx.Alpha
module Disagree = Vardi_approx.Disagree
module Formula = Vardi_logic.Formula
module Eval = Vardi_relational.Eval
module Ph = Vardi_cwdb.Ph
module Cw_database = Vardi_cwdb.Cw_database
module Vocabulary = Vardi_logic.Vocabulary

(* Cross-check the formula against the oracle for a k-ary predicate on
   a small database with one unknown. *)
let agreement_check arity =
  let constants = [ "a"; "b"; "c" ] in
  let facts =
    [
      { Cw_database.pred = "P"; args = List.init arity (fun i ->
            List.nth constants (i mod 2)) };
    ]
  in
  let db =
    Cw_database.make
      ~vocabulary:
        (Vocabulary.make ~constants ~predicates:[ ("P", arity) ])
      ~facts
      ~distinct:[ ("a", "b") ]
  in
  let ph2 = Ph.ph2 db in
  let formula = Alpha.formula ~pred:"P" ~arity in
  let rec tuples k =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun c -> List.map (fun t -> c :: t) (tuples (k - 1)))
        constants
  in
  List.for_all
    (fun tuple ->
      let env = List.mapi (fun i c -> (Alpha.free_var (i + 1), c)) tuple in
      Eval.holds ph2 env formula = Disagree.alpha_holds db "P" tuple)
    (tuples arity)

let e8 () =
  let rows =
    List.map
      (fun arity ->
        let formula = Alpha.formula ~pred:"P" ~arity in
        let size = Formula.size formula in
        let bound =
          float size
          /. (float arity *. log (float (2 * arity)) /. log 2.0)
        in
        let checked =
          if arity <= 3 then string_of_bool (agreement_check arity) else "-"
        in
        [
          string_of_int arity;
          string_of_int size;
          Printf.sprintf "%.2f" bound;
          checked;
        ])
      [ 1; 2; 3; 4; 6; 8; 12; 16; 24; 32 ]
  in
  Table.make ~id:"E8"
    ~title:"Lemma 10: size of the alpha_P formula vs predicate arity"
    ~paper_claim:
      "Lemma 10: alpha_P has length O(k log k) in the vocabulary {P, NE, =}"
    ~header:[ "arity k"; "formula size"; "size / (k log2 2k)"; "matches oracle" ]
    ~notes:
      [
        "the normalized column stays bounded (and here even decreases): the \
         construction meets the O(k log k) bound;";
        "'matches oracle' evaluates the formula on Ph2 against the \
         union-find disagreement oracle over all |C|^k tuples.";
      ]
    rows
