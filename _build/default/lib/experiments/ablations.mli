(** Ablation benches for the design choices DESIGN.md calls out.

    A1 — exact engine: literal Theorem-1 mapping enumeration vs the
    kernel-partition engine (the isomorphism/symmetry reduction).

    A2 — approximation back end: direct Tarskian evaluation vs
    compilation to relational algebra (the "standard DBMS" route).

    A3 — negated atoms: semantic [α_P] oracle (Theorem 14's
    polynomial-time check) vs the syntactic Lemma-10 subformula.

    A4 — countermodel search order: fresh-first vs merge-first kernel
    partition enumeration on the Theorem 5 reduction. *)

val a1 : unit -> Table.t
val a2 : unit -> Table.t
val a3 : unit -> Table.t
val a4 : unit -> Table.t
