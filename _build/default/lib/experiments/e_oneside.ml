module Certain = Vardi_certain.Engine
module Sampling = Vardi_certain.Sampling
module Approx = Vardi_approx.Evaluate
module Query = Vardi_logic.Query

let e12 () =
  let pairs =
    (* Boolean instances derived from the standard random pool. *)
    List.concat_map
      (fun (db, q) ->
        if Query.is_boolean q then [ (db, q) ]
        else
          (* Close the query existentially to get a sentence. *)
          let body =
            Vardi_logic.Formula.exists_many (Query.head q) (Query.body q)
          in
          [ (db, Query.boolean body) ])
      (Workloads.random_pairs ~count:300 ~seed:4242)
  in
  let total = List.length pairs in
  let rows =
    List.map
      (fun samples ->
        let decided_yes = ref 0 in
        let decided_no = ref 0 in
        let residue = ref 0 in
        let wrong = ref 0 in
        List.iteri
          (fun i (db, q) ->
            let exact = Certain.certain_boolean db q in
            let yes = Approx.boolean db q in
            let no =
              Sampling.boolean ~samples ~seed:(i + 1) db q
              = Sampling.Not_certain
            in
            if yes && not exact then incr wrong;
            if no && exact then incr wrong;
            if yes then incr decided_yes
            else if no then incr decided_no
            else incr residue)
          pairs;
        [
          string_of_int samples;
          string_of_int total;
          string_of_int !decided_yes;
          string_of_int !decided_no;
          string_of_int !residue;
          Printf.sprintf "%.1f%%" (100.0 *. float !residue /. float total);
          string_of_int !wrong;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Table.make ~id:"E12"
    ~title:"two one-sided deciders: approximation (yes) + sampling (no)"
    ~paper_claim:
      "Thm 5 makes exact evaluation co-NP-complete; Thm 11's sound \
       approximation and countermodel sampling are both polynomial and \
       one-sided — the residue neither decides is the irreducible hard core"
    ~header:
      [
        "samples";
        "sentences";
        "decided yes";
        "decided no";
        "residue";
        "residue %";
        "wrong verdicts";
      ]
    ~notes:
      [
        "'wrong verdicts' must be 0: both procedures are one-sided-correct \
         by construction;";
        "the residue shrinks with the sampling budget but does not vanish — \
         sentences that are false only in rare world-shapes need many \
         samples, and true-but-unprovable sentences are never decided.";
      ]
    rows
