lib/experiments/e_alpha.mli: Table
