lib/experiments/workloads.ml: List Printf Random Vardi_cwdb Vardi_logic
