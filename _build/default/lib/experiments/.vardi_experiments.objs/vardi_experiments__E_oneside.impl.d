lib/experiments/e_oneside.ml: List Printf Table Vardi_approx Vardi_certain Vardi_logic Workloads
