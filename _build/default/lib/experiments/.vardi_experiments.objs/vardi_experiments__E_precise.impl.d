lib/experiments/e_precise.ml: List String Table Vardi_approx Vardi_certain Vardi_cwdb Vardi_logic Vardi_relational Workloads
