lib/experiments/e_precise.mli: Table
