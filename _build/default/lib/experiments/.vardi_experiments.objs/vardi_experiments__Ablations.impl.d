lib/experiments/ablations.ml: List Printf Table Vardi_approx Vardi_certain Vardi_cwdb Vardi_logic Vardi_reductions Vardi_relational Workloads
