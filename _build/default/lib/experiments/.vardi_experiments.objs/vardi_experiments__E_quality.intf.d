lib/experiments/e_quality.mli: Table
