lib/experiments/registry.ml: Ablations E_alpha E_baselines E_oneside E_precise E_quality E_reductions E_scaling E_storage List String
