lib/experiments/workloads.mli: Vardi_cwdb Vardi_logic
