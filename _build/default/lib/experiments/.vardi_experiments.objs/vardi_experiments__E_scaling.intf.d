lib/experiments/e_scaling.mli: Table
