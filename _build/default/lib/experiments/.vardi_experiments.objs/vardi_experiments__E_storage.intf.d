lib/experiments/e_storage.mli: Table
