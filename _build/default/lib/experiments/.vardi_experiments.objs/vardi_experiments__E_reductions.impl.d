lib/experiments/e_reductions.ml: List Table Vardi_certain Vardi_cwdb Vardi_logic Vardi_reductions
