lib/experiments/e_reductions.mli: Table
