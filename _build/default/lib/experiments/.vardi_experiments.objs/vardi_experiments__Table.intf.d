lib/experiments/table.mli: Fmt
