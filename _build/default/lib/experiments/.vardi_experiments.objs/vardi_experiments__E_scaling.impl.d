lib/experiments/e_scaling.ml: List Printf Table Vardi_approx Vardi_certain Vardi_cwdb Vardi_logic Vardi_relational Workloads
