lib/experiments/e_storage.ml: List Printf Table Vardi_cwdb Vardi_relational Workloads
