lib/experiments/e_alpha.ml: List Printf Table Vardi_approx Vardi_cwdb Vardi_logic Vardi_relational
