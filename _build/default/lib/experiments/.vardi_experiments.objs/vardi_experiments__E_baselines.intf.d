lib/experiments/e_baselines.mli: Table
