lib/experiments/e_oneside.mli: Table
