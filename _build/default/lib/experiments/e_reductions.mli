(** Experiments E3, E4, E5: the hardness reductions, executed.

    E3 (Theorem 5): 3-colorability decided through certain evaluation
    of a fixed Boolean query; reduction agrees with the backtracking
    solver, and the exact engine's work grows exponentially in the
    graph size while the solver's does not (at these sizes) — the
    co-NP-completeness of data complexity made visible.

    E4 (Theorem 7): Bₖ₊₁ QBF truth decided through Σₖ first-order
    certain evaluation (combined complexity Πₖ₊₁ᵖ).

    E5 (Theorem 9): Bₖ₊₁ (3-CNF) QBF truth decided through Σₖ
    second-order certain evaluation (data complexity Πₖ₊₁ᵖ). *)

val e3 : unit -> Table.t
val e4 : unit -> Table.t
val e5 : unit -> Table.t
