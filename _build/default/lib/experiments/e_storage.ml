module Ne_virtual = Vardi_cwdb.Ne_virtual
module Ph = Vardi_cwdb.Ph
module Cw_database = Vardi_cwdb.Cw_database
module Relation = Vardi_relational.Relation
module Database = Vardi_relational.Database

let agree db nev =
  let ne = Database.relation (Ph.ph2 db) Ph.ne_predicate in
  let constants = Cw_database.constants db in
  List.for_all
    (fun c ->
      List.for_all
        (fun d -> Ne_virtual.holds nev c d = Relation.mem [ c; d ] ne)
        constants)
    constants

let e9 () =
  let rows =
    List.map
      (fun (constants, unknowns) ->
        let db = Workloads.parametric_db ~constants ~unknowns ~seed:31 in
        let nev = Ne_virtual.make db in
        let explicit = Ne_virtual.explicit_size db in
        let virtual_size = Ne_virtual.storage_size nev in
        [
          string_of_int constants;
          string_of_int unknowns;
          string_of_int explicit;
          string_of_int (List.length (Ne_virtual.unknowns nev));
          string_of_int (List.length (Ne_virtual.stored_pairs nev));
          string_of_int virtual_size;
          (if explicit = 0 then "n/a"
           else Printf.sprintf "%.2fx" (float explicit /. float (max 1 virtual_size)));
          string_of_bool (agree db nev);
        ])
      [
        (8, 0); (8, 2); (16, 0); (16, 2); (32, 0); (32, 4); (64, 0); (64, 4);
      ]
  in
  Table.make ~id:"E9"
    ~title:"virtual NE relation: storage vs the explicit encoding"
    ~paper_claim:
      "Section 5: storing NE explicitly is up to quadratic; with unknown set \
       U and known inequalities NE', NE(x,y) = NE'(x,y) or (~U(x) and ~U(y) \
       and x != y) — empty U/NE' when fully specified"
    ~header:
      [
        "|C|"; "unknowns"; "explicit |NE|"; "|U|"; "|NE'|"; "virtual total";
        "saving"; "agree";
      ]
    rows
