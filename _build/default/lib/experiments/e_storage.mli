(** Experiment E9 (Section 5, end): the virtual [NE] representation.

    Compares the storage cost of the explicit [NE] relation (quadratic
    in the number of known values) against the [U]/[NE′] virtual
    representation (linear when unknowns are few), across database
    sizes and unknown-value counts, verifying semantic agreement. *)

val e9 : unit -> Table.t
