(** Experiment E8 (Lemma 10): the syntactic [α_P] formula.

    Measures the formula size against the arity (the paper proves an
    O(k log k) length bound) and cross-checks the formula's semantics
    against the polynomial-time disagreement oracle. *)

val e8 : unit -> Table.t
