(** Experiment E12: covering the exact problem with two one-sided
    polynomial procedures.

    The Section 5 approximation decides "certainly true" (sound,
    incomplete — Theorem 11); Monte-Carlo countermodel sampling decides
    "certainly false" (complete, unsound). Neither alone decides the
    co-NP-complete problem — both together leave a residue, measured
    here against ground truth from the exact engine, as a function of
    the sampling budget. *)

val e12 : unit -> Table.t
