module Vocabulary = Vardi_logic.Vocabulary
module Formula = Vardi_logic.Formula
module Term = Vardi_logic.Term
module Query = Vardi_logic.Query
module Cw_database = Vardi_cwdb.Cw_database

let constant_name i = Printf.sprintf "k%d" i

let parametric_db ~constants ~unknowns ~seed =
  if constants < 1 then invalid_arg "Workloads: need at least one constant";
  if unknowns > constants then
    invalid_arg "Workloads: more unknowns than constants";
  let names = List.init constants constant_name in
  let state = Random.State.make [| seed; constants; unknowns |] in
  let pick () = constant_name (Random.State.int state constants) in
  let unary_facts =
    List.init (max 1 (constants / 2)) (fun _ -> ("P", [ pick () ]))
  in
  let binary_facts =
    List.init constants (fun _ -> ("R", [ pick (); pick () ]))
  in
  let unknown i = i < unknowns in
  let distinct =
    let pairs = ref [] in
    for i = 0 to constants - 1 do
      for j = i + 1 to constants - 1 do
        if not (unknown i || unknown j) then
          pairs := (constant_name i, constant_name j) :: !pairs
      done
    done;
    !pairs
  in
  Cw_database.make
    ~vocabulary:
      (Vocabulary.make ~constants:names ~predicates:[ ("P", 1); ("R", 2) ])
    ~facts:
      (List.map
         (fun (pred, args) -> { Cw_database.pred; args })
         (unary_facts @ binary_facts))
    ~distinct

let parse = Vardi_logic.Parser.query

let mixed_query = parse "(x). (exists y. R(x, y)) /\\ ~P(x)"
let positive_query = parse "(x). exists y. R(x, y) /\\ P(y)"
let negative_sentence = parse "(). exists x. ~P(x) /\\ (exists y. R(x, y))"

let random_pairs ~count ~seed =
  let state = Random.State.make [| seed; count |] in
  List.init count (fun i ->
      let constants = 2 + Random.State.int state 3 in
      let unknowns = Random.State.int state (constants + 1) in
      let db =
        parametric_db ~constants ~unknowns ~seed:(seed + (i * 7919))
      in
      let queries =
        [
          mixed_query;
          positive_query;
          parse "(x). ~P(x)";
          parse "(x). ~(exists y. R(x, y))";
          parse "(x). P(x) \\/ ~P(x)";
          parse "(x, y) . R(x, y) /\\ x != y";
        ]
      in
      let q = List.nth queries (Random.State.int state (List.length queries)) in
      (db, q))
