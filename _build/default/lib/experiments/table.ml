type t = {
  id : string;
  title : string;
  paper_claim : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~paper_claim ~header ?(notes = []) rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg
          (Printf.sprintf "Table %s: row width %d, header width %d" id
             (List.length row) (List.length header)))
    rows;
  { id; title; paper_claim; header; rows; notes }

let widths t =
  let all = t.header :: t.rows in
  let cols = List.length t.header in
  List.init cols (fun i ->
      List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all)

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let pp ppf t =
  let ws = widths t in
  let line row =
    String.concat "  " (List.map2 pad ws row)
  in
  Fmt.pf ppf "@.=== %s: %s ===@." t.id t.title;
  Fmt.pf ppf "paper: %s@.@." t.paper_claim;
  Fmt.pf ppf "%s@." (line t.header);
  Fmt.pf ppf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') ws));
  List.iter (fun row -> Fmt.pf ppf "%s@." (line row)) t.rows;
  List.iter (fun note -> Fmt.pf ppf "note: %s@." note) t.notes

let to_markdown t =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (Printf.sprintf "### %s — %s\n\n" t.id t.title);
  Buffer.add_string buffer (Printf.sprintf "*Paper claim:* %s\n\n" t.paper_claim);
  Buffer.add_string buffer
    ("| " ^ String.concat " | " t.header ^ " |\n");
  Buffer.add_string buffer
    ("|" ^ String.concat "|" (List.map (fun _ -> "---") t.header) ^ "|\n");
  List.iter
    (fun row -> Buffer.add_string buffer ("| " ^ String.concat " | " row ^ " |\n"))
    t.rows;
  List.iter
    (fun note -> Buffer.add_string buffer (Printf.sprintf "\n*Note:* %s\n" note))
    t.notes;
  Buffer.contents buffer

let ms v =
  if v < 0.01 then "<0.01"
  else if v < 10.0 then Printf.sprintf "%.2f" v
  else if v < 1000.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.0f" v

let time f =
  let start = Sys.time () in
  let result = f () in
  (result, (Sys.time () -. start) *. 1000.0)
