(** Experiment E6 (Theorems 11–13): answer quality of the
    approximation algorithm.

    On random database/query pairs, measure:
    - soundness rate (must be 100%, Theorem 11);
    - completeness rate on fully specified databases (must be 100%,
      Theorem 12);
    - completeness rate on positive queries (must be 100%, Theorem 13);
    - recall on the residual fragment (negative queries over unknown
      values) — the price of tractability, and the fragment where the
      approximation legitimately under-reports. *)

val e6 : unit -> Table.t
