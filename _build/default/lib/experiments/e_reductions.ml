module Certain = Vardi_certain.Engine
module Graph = Vardi_reductions.Graph
module Qbf = Vardi_reductions.Qbf
module Three_col = Vardi_reductions.Three_col
module Qbf_fo = Vardi_reductions.Qbf_fo
module Qbf_so = Vardi_reductions.Qbf_so
module Cw_database = Vardi_cwdb.Cw_database

let e3 () =
  let instances_per_size = 3 in
  let rows =
    List.map
      (fun vertices ->
        let graphs =
          List.init instances_per_size (fun seed ->
              Graph.random ~vertices ~edge_probability:0.5 ~seed:(seed + 1))
        in
        let results =
          List.map
            (fun g ->
              let db = Three_col.database g in
              let (certain_verdict, stats), red_ms =
                Table.time (fun () ->
                    Certain.certain_boolean_stats db Three_col.query)
              in
              let solver, solver_ms =
                Table.time (fun () -> Graph.colorable 3 g)
              in
              let reduction = not certain_verdict in
              (reduction = solver, stats.Certain.structures, red_ms, solver_ms))
            graphs
        in
        let agree = List.for_all (fun (ok, _, _, _) -> ok) results in
        let sum f = List.fold_left (fun a r -> a +. f r) 0.0 results in
        let max_structs =
          List.fold_left (fun a (_, s, _, _) -> max a s) 0 results
        in
        [
          string_of_int vertices;
          string_of_int (vertices + 3);
          string_of_int instances_per_size;
          string_of_bool agree;
          string_of_int max_structs;
          Table.ms (sum (fun (_, _, r, _) -> r));
          Table.ms (sum (fun (_, _, _, s) -> s));
        ])
      [ 3; 4; 5; 6; 7 ]
  in
  Table.make ~id:"E3"
    ~title:"Theorem 5: 3-colorability via certain evaluation (fixed query)"
    ~paper_claim:
      "Thm 5: LAS(Q) is co-NP-complete for a fixed first-order query — data \
       complexity jumps from LOGSPACE (physical) to co-NP (logical)"
    ~header:
      [
        "|V|";
        "|C|";
        "graphs";
        "agree";
        "max structures";
        "reduction ms";
        "solver ms";
      ]
    ~notes:
      [
        "'structures' counts the kernel partitions the exact engine examined \
         (early exit on the first countermodel);";
        "the dedicated backtracking solver stays flat at these sizes — the \
         gap is the price of answering through the generic logical-database \
         engine.";
      ]
    rows

let qbf_suite () =
  [
    ("B2 [2;2]", Qbf.random_cnf3 ~blocks:[ 2; 2 ] ~clauses:3 ~seed:5);
    ("B2 [3;2]", Qbf.random_cnf3 ~blocks:[ 3; 2 ] ~clauses:4 ~seed:9);
    ("B3 [2;2;2]", Qbf.random_cnf3 ~blocks:[ 2; 2; 2 ] ~clauses:4 ~seed:13);
    ("B3 [1;2;2]", Qbf.random_cnf3 ~blocks:[ 1; 2; 2 ] ~clauses:3 ~seed:17);
    ("B4 [1;1;1;1]", Qbf.random_cnf3 ~blocks:[ 1; 1; 1; 1 ] ~clauses:3 ~seed:21);
  ]

let e4 () =
  let rows =
    List.map
      (fun (name, qbf) ->
        let direct, direct_ms = Table.time (fun () -> Qbf.eval qbf) in
        let reduced, red_ms =
          Table.time (fun () -> Qbf_fo.eval_via_certain qbf)
        in
        let db = Qbf_fo.database qbf in
        let query = Qbf_fo.query qbf in
        let rank =
          match Vardi_logic.Formula.fo_sigma_rank (Vardi_logic.Query.body query) with
          | Some k -> string_of_int k
          | None -> "?"
        in
        [
          name;
          string_of_int (Cw_database.size db);
          rank;
          string_of_bool direct;
          string_of_bool (direct = reduced);
          Table.ms direct_ms;
          Table.ms red_ms;
        ])
      (qbf_suite ())
  in
  Table.make ~id:"E4"
    ~title:"Theorem 7: QBF (B_{k+1}) via Sigma_k first-order certain evaluation"
    ~paper_claim:
      "Thm 7: LAS over Sigma_k first-order queries is Pi_{k+1}^p-complete — \
       one level above the Sigma_k^p-complete physical case (Thm 6)"
    ~header:
      [ "formula"; "db size"; "FO rank"; "value"; "agree"; "direct ms"; "reduction ms" ]
    rows

let e5 () =
  let suite =
    [
      ("B2 [1;1]", Qbf.random_cnf3 ~blocks:[ 1; 1 ] ~clauses:2 ~seed:3);
      ("B2 [2;1]", Qbf.random_cnf3 ~blocks:[ 2; 1 ] ~clauses:3 ~seed:4);
      ("B2 [1;2]", Qbf.random_cnf3 ~blocks:[ 1; 2 ] ~clauses:3 ~seed:5);
      ("B3 [1;1;1]", Qbf.random_cnf3 ~blocks:[ 1; 1; 1 ] ~clauses:2 ~seed:6);
    ]
  in
  let rows =
    List.map
      (fun (name, qbf) ->
        let direct, direct_ms = Table.time (fun () -> Qbf.eval qbf) in
        let reduced, red_ms =
          Table.time (fun () -> Qbf_so.eval_via_certain qbf)
        in
        let query = Qbf_so.query qbf in
        let rank =
          match Vardi_logic.Formula.so_sigma_rank (Vardi_logic.Query.body query) with
          | Some k -> string_of_int k
          | None -> "?"
        in
        [
          name;
          rank;
          string_of_bool direct;
          string_of_bool (direct = reduced);
          Table.ms direct_ms;
          Table.ms red_ms;
        ])
      suite
  in
  Table.make ~id:"E5"
    ~title:"Theorem 9: QBF (3-CNF) via Sigma_k second-order certain evaluation"
    ~paper_claim:
      "Thm 9: LAS(Q) for Sigma_k second-order queries is \
       Pi_{k+1}^p-complete — data complexity climbs one level versus the \
       physical case (Thm 8)"
    ~header:[ "formula"; "SO rank"; "value"; "agree"; "direct ms"; "reduction ms" ]
    ~notes:
      [
        "the reduction evaluates second-order quantifiers by relation \
         enumeration — exponential, hence the toy sizes.";
      ]
    rows
