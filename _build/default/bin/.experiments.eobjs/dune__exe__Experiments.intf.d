bin/experiments.mli:
