bin/experiments.ml: Array Fmt List String Sys Vardi_experiments
