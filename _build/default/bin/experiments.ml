(* Prints the full experiment report.

   dune exec bin/experiments.exe                — text tables
   dune exec bin/experiments.exe -- --markdown  — EXPERIMENTS.md body
   dune exec bin/experiments.exe -- E3 A1       — selected experiments *)

module Experiments = Vardi_experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let markdown = List.mem "--markdown" args in
  let selected = List.filter (fun a -> not (String.equal a "--markdown")) args in
  let chosen =
    match selected with
    | [] -> List.map (fun (_, _, run) -> run) Experiments.Registry.all
    | ids ->
      List.map
        (fun id ->
          match Experiments.Registry.find id with
          | Some run -> run
          | None ->
            Fmt.epr "unknown experiment %s (known: %s)@." id
              (String.concat ", "
                 (List.map (fun (i, _, _) -> i) Experiments.Registry.all));
            exit 1)
        ids
  in
  List.iter
    (fun run ->
      let table = run () in
      if markdown then print_string (Experiments.Table.to_markdown table)
      else Fmt.pr "%a@." Experiments.Table.pp table)
    chosen
