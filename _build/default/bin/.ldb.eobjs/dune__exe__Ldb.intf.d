bin/ldb.mli:
